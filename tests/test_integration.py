"""End-to-end integration: the full paper flow on a tiny benchmark.

Mirrors examples/quickstart.py: dataset -> train -> catalog -> generate ->
verify, asserting the cross-module contracts that unit tests cannot see.
"""

import numpy as np
import pytest

from repro.analysis import activation_percentage
from repro.core import TestGenConfig, TestGenerator, verify_coverage
from repro.datasets import SHDLike
from repro.faults import FaultModelConfig, FaultSimulator, build_catalog
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.training import Trainer


@pytest.fixture(scope="module")
def flow():
    dataset = SHDLike(train_size=80, test_size=30, channels=24, steps=16, seed=0)
    spec = NetworkSpec(
        name="integration",
        input_shape=dataset.input_shape,
        layers=(DenseSpec(out_features=16), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    training = Trainer(network, dataset, lr=0.03, batch_size=16).fit(
        epochs=5, rng=np.random.default_rng(1)
    )
    fault_config = FaultModelConfig(synapse_sample_fraction=0.1)
    catalog = build_catalog(network, fault_config, rng=np.random.default_rng(2))
    config = TestGenConfig(
        steps_stage1=80, probe_steps=120, max_iterations=4, time_limit_s=120, t_in_max=48
    )
    generation = TestGenerator(network, config, rng=np.random.default_rng(3)).generate()
    return dataset, network, training, fault_config, catalog, generation


class TestEndToEnd:
    def test_model_learned(self, flow):
        _, _, training, _, _, _ = flow
        assert training.test_accuracy > 2 / 20

    def test_generation_activates_more_than_sample(self, flow):
        dataset, network, _, _, _, generation = flow
        sample, _ = dataset.sample(0, "test")
        optimized = activation_percentage(network, generation.stimulus.assembled())
        baseline = activation_percentage(network, sample)
        assert optimized > baseline

    def test_verification_campaign(self, flow):
        dataset, network, _, fault_config, catalog, generation = flow
        simulator = FaultSimulator(network, fault_config)
        inputs, labels = dataset.subset(10, "test")
        classification = simulator.classify(inputs, labels, catalog.faults)
        detection, breakdown = verify_coverage(
            network, generation.stimulus, catalog.faults, fault_config, classification
        )
        # Critical faults are covered better than benign (the paper's core trend).
        critical_fc = (breakdown.fc_critical_neuron + breakdown.fc_critical_synapse) / 2
        benign_fc = (breakdown.fc_benign_neuron + breakdown.fc_benign_synapse) / 2
        assert critical_fc > benign_fc
        assert critical_fc > 0.5

    def test_optimized_beats_single_sample_detection(self, flow):
        dataset, network, _, fault_config, catalog, generation = flow
        simulator = FaultSimulator(network, fault_config)
        optimized = simulator.detect(generation.stimulus.assembled(), catalog.faults)
        sample, _ = dataset.sample(0, "test")
        baseline = simulator.detect(sample, catalog.faults)
        assert optimized.detection_rate() > baseline.detection_rate()

    def test_stimulus_round_trips_through_storage(self, flow, tmp_path):
        from repro.core import TestStimulus

        _, network, _, fault_config, catalog, generation = flow
        path = str(tmp_path / "stimulus.npz")
        generation.stimulus.save(path)
        loaded = TestStimulus.load(path, network.input_shape)
        # Identical detection outcome after a storage round-trip.
        simulator = FaultSimulator(network, fault_config)
        subset = catalog.faults[:: max(1, len(catalog.faults) // 60)]
        a = simulator.detect(generation.stimulus.assembled(), subset)
        b = simulator.detect(loaded.assembled(), subset)
        assert np.array_equal(a.detected, b.detected)

    def test_network_untouched_by_whole_flow(self, flow):
        """The flow must never leave fault state or parameter drift behind."""
        _, network, _, _, _, _ = flow
        for module in network.spiking_modules:
            assert not module.mode.any()
            assert np.allclose(module.threshold, module.params.threshold)
            assert np.allclose(module.leak, module.params.leak)
            assert module.surrogate_slope == module.params.surrogate_slope
