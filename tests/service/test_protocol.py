"""Protocol-layer contracts: deterministic framing, typed rejection of
everything malformed, and the frame-size cap."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_FRAME_ENV,
    decode_frame,
    encode_frame,
    error_frame,
    max_frame_bytes,
    raise_on_error,
)

# JSON-representable values (no NaN/Inf — the protocol refuses them).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)
_frames = st.dictionaries(st.text(max_size=10), _values, max_size=8)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_frames)
    def test_encode_decode_round_trip(self, frame):
        assert decode_frame(encode_frame(frame)) == json.loads(
            json.dumps(frame)
        )

    @settings(max_examples=50, deadline=None)
    @given(_frames)
    def test_encoding_is_deterministic_single_line(self, frame):
        data = encode_frame(frame)
        assert data == encode_frame(dict(reversed(list(frame.items()))))
        assert data.endswith(b"\n")
        assert b"\n" not in data[:-1]


class TestMalformedFrames:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"\n",
            b"   \n",
            b"not json\n",
            b"[1, 2, 3]\n",  # JSON but not an object
            b'"string"\n',
            b"42\n",
            b'{"torn": tru',
            b"\xff\xfe invalid utf8\n",
        ],
    )
    def test_malformed_frame_raises_typed_error(self, payload):
        with pytest.raises(ServiceError) as err:
            decode_frame(payload)
        assert err.value.code == "bad-frame"

    def test_non_dict_encode_rejected(self):
        with pytest.raises(ServiceError) as err:
            encode_frame(["not", "a", "dict"])
        assert err.value.code == "bad-frame"

    def test_nan_rejected(self):
        with pytest.raises(ServiceError) as err:
            encode_frame({"x": float("nan")})
        assert err.value.code == "bad-frame"

    def test_unserializable_rejected(self):
        with pytest.raises(ServiceError) as err:
            encode_frame({"x": object()})
        assert err.value.code == "bad-frame"


class TestSizeCap:
    def test_oversized_decode_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_FRAME_ENV, "1024")
        assert max_frame_bytes() == 1024
        with pytest.raises(ServiceError) as err:
            decode_frame(b'{"pad": "' + b"x" * 2000 + b'"}\n')
        assert err.value.code == "frame-too-large"

    def test_oversized_encode_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_FRAME_ENV, "1024")
        with pytest.raises(ServiceError) as err:
            encode_frame({"pad": "x" * 2000})
        assert err.value.code == "frame-too-large"

    def test_env_floor_and_default(self, monkeypatch):
        monkeypatch.delenv(MAX_FRAME_ENV, raising=False)
        assert max_frame_bytes() == 1 << 20
        monkeypatch.setenv(MAX_FRAME_ENV, "7")  # below the floor
        assert max_frame_bytes() == 1024
        monkeypatch.setenv(MAX_FRAME_ENV, "junk")
        with pytest.raises(ServiceError):
            max_frame_bytes()


class TestErrorFrames:
    def test_error_frame_round_trip(self):
        frame = error_frame(ServiceError("queue is full", code="queue-full"))
        decoded = decode_frame(encode_frame(frame))
        with pytest.raises(ServiceError) as err:
            raise_on_error(decoded)
        assert err.value.code == "queue-full"
        assert "queue is full" in str(err.value)

    def test_ok_frame_passes_through(self):
        frame = {"ok": True, "id": "j000001"}
        assert raise_on_error(frame) is frame
