"""Shared fixtures for the campaign-service suite: one small campaign,
its serial reference result, and a daemon running in a background thread.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.coverage import verify_coverage
from repro.core.testset import TestStimulus
from repro.faults.catalog import build_catalog
from repro.faults.model import FaultModelConfig
from repro.service import ServiceClient, save_campaign_bundle
from repro.service.daemon import CampaignService, ServiceConfig
from repro.snn.builder import DenseSpec, NetworkSpec, build_network
from repro.snn.neuron import LIFParameters


@pytest.fixture(scope="session")
def service_campaign():
    """A small verify campaign plus the serial reference every service
    execution must reproduce bit-identically."""
    spec = NetworkSpec(
        name="svc",
        input_shape=(12,),
        layers=(DenseSpec(out_features=10), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    net = build_network(spec, np.random.default_rng(0))
    config = FaultModelConfig()
    catalog = build_catalog(net, config)
    faults = (catalog.neuron_faults[::3] + catalog.synapse_faults[::7])[:60]
    rng = np.random.default_rng(1)
    chunks = [(rng.random((6, 1, 12)) > 0.6).astype(float) for _ in range(3)]
    stimulus = TestStimulus(chunks=chunks, input_shape=(12,))
    serial, _ = verify_coverage(net, stimulus, faults, config, exact_metrics=True)
    return {
        "network": net,
        "config": config,
        "faults": faults,
        "stimulus": stimulus,
        "serial": serial,
    }


@pytest.fixture()
def verify_bundle(service_campaign, tmp_path):
    """One bundle file for the shared campaign."""
    path = tmp_path / "verify.bundle"
    save_campaign_bundle(
        path,
        {
            "kind": "verify",
            "network": service_campaign["network"],
            "stimulus": service_campaign["stimulus"],
            "faults": service_campaign["faults"],
            "fault_config": service_campaign["config"],
            "options": {"segmented": True, "exact_metrics": True},
        },
    )
    return str(path)


class DaemonHarness:
    """A daemon on a unix socket in a background thread, plus client
    factories.  ``stop()`` is idempotent."""

    def __init__(self, tmp_path, **config_overrides):
        self.state_dir = str(tmp_path / "state")
        self.socket_path = str(tmp_path / "svc.sock")
        kwargs = {"workers": 2, "max_jobs": 2}
        kwargs.update(config_overrides)
        self.config = ServiceConfig(
            state_dir=self.state_dir, socket_path=self.socket_path, **kwargs
        )
        self.service = CampaignService(self.config)
        self._thread = None

    def start(self):
        started = threading.Event()

        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def main():
                await self.service.start()
                started.set()
                await self.service._shutdown.wait()
                await self.service.stop()

            loop.run_until_complete(main())
            loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(10), "daemon did not start"
        return self

    def client(self, name="test", **kwargs):
        return ServiceClient(socket_path=self.socket_path, client=name, **kwargs)

    def stop(self):
        if self._thread is None or not self._thread.is_alive():
            return
        try:
            self.client().shutdown()
        except Exception:
            self.service.request_shutdown()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "daemon did not stop"


@pytest.fixture()
def daemon(tmp_path):
    harnesses = []

    def factory(**config_overrides):
        harness = DaemonHarness(tmp_path, **config_overrides).start()
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


def assert_result_matches(result_path, serial):
    """The job's persisted result container vs the serial reference."""
    from repro.core.checkpoint import deserialize_checkpoint

    with open(result_path, "rb") as fh:
        arrays, _ = deserialize_checkpoint(fh.read())
    assert np.array_equal(arrays["detected"], serial.detected)
    assert np.array_equal(arrays["output_l1"], serial.output_l1)
    assert np.array_equal(arrays["class_count_diff"], serial.class_count_diff)
