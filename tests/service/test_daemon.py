"""Daemon contracts: bit-identical campaign execution, admission control,
cancellation, deadlines, event streams, and wire-level robustness.

The daemon runs in a background thread of the test process (so its forked
campaign workers and monkeypatched seams are shared); clients talk to it
over its real unix socket.
"""

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import JobCancelledError, ServiceError
from repro.service.protocol import MAX_FRAME_ENV, decode_frame
import repro.service.daemon as daemon_mod

from tests.service.conftest import assert_result_matches


def _blocking_runner(started, release):
    """A stand-in for run_job that parks until cancelled (or released),
    recording dispatch order — full control over daemon occupancy."""

    def run_job(record, store, workers, token, emit=None, store_dir=None):
        started.append(record.spec.id)
        while not token.cancelled:
            if release.is_set():
                from repro.service.runner import JobOutcome

                return JobOutcome(summary={"blocked": True}, result_digest="")
            time.sleep(0.005)
        raise JobCancelledError(token.reason)

    return run_job


class TestExecution:
    def test_single_job_bit_identical(self, daemon, service_campaign,
                                      verify_bundle):
        harness = daemon()
        client = harness.client()
        job_id = client.submit(verify_bundle)
        job = client.wait(job_id, deadline_s=120)
        assert job["state"] == "done"
        result = client.result(job_id)
        assert_result_matches(result["result_path"], service_campaign["serial"])

    def test_eight_concurrent_clients_bit_identical(
        self, daemon, service_campaign, verify_bundle
    ):
        """The acceptance bar: 8 campaigns through one daemon, each from
        its own client, all bit-identical to the serial reference."""
        harness = daemon(max_jobs=4, client_cap=8, queue_depth=16)

        def one(index):
            client = harness.client(name=f"client{index}")
            job_id = client.submit(verify_bundle)
            job = client.wait(job_id, deadline_s=300)
            return job_id, job

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(one, range(8)))
        assert len({job_id for job_id, _ in outcomes}) == 8
        reader = harness.client()
        for job_id, job in outcomes:
            assert job["state"] == "done", (job_id, job.get("error"))
            result = reader.result(job_id)
            assert_result_matches(
                result["result_path"], service_campaign["serial"]
            )

    def test_generate_job_runs(self, daemon, service_campaign, tmp_path):
        from repro.core.config import TestGenConfig
        from repro.service import save_campaign_bundle

        bundle = tmp_path / "generate.bundle"
        save_campaign_bundle(
            bundle,
            {
                "kind": "generate",
                "network": service_campaign["network"],
                "config": TestGenConfig(
                    t_in_min=6,
                    steps_stage1=12,
                    steps_stage2=6,
                    max_iterations=2,
                    stall_iterations=2,
                    time_limit_s=600.0,
                ),
                "seed": 7,
            },
        )
        harness = daemon()
        client = harness.client()
        job_id = client.submit(str(bundle), kind="generate")
        job = client.wait(job_id, deadline_s=300)
        assert job["state"] == "done", job.get("error")
        assert job["summary"]["num_chunks"] >= 1


class TestAdmissionControl:
    def test_queue_full_rejection(self, daemon, verify_bundle, monkeypatch):
        started, release = [], threading.Event()
        monkeypatch.setattr(
            daemon_mod, "run_job", _blocking_runner(started, release)
        )
        harness = daemon(max_jobs=1, queue_depth=1, client_cap=8)
        client = harness.client()
        running = client.submit(verify_bundle)  # occupies the one slot
        _wait_for(lambda: started, "first job dispatch")
        queued = client.submit(verify_bundle)  # fills the queue
        with pytest.raises(ServiceError) as err:
            client.submit(verify_bundle)
        assert err.value.code == "queue-full"
        release.set()
        assert client.wait(running, deadline_s=30)["state"] == "done"
        assert client.wait(queued, deadline_s=30)["state"] == "done"

    def test_client_cap_rejection(self, daemon, verify_bundle, monkeypatch):
        started, release = [], threading.Event()
        monkeypatch.setattr(
            daemon_mod, "run_job", _blocking_runner(started, release)
        )
        harness = daemon(max_jobs=1, queue_depth=8, client_cap=1)
        greedy = harness.client(name="greedy")
        job = greedy.submit(verify_bundle)
        with pytest.raises(ServiceError) as err:
            greedy.submit(verify_bundle)
        assert err.value.code == "client-cap"
        # Another client is unaffected by the greedy one's cap.
        other = harness.client(name="other").submit(verify_bundle)
        release.set()
        assert greedy.wait(job, deadline_s=30)["state"] == "done"
        assert greedy.wait(other, deadline_s=30)["state"] == "done"

    def test_priority_orders_dispatch(self, daemon, verify_bundle, monkeypatch):
        started, release = [], threading.Event()
        monkeypatch.setattr(
            daemon_mod, "run_job", _blocking_runner(started, release)
        )
        harness = daemon(max_jobs=1, queue_depth=8)
        client = harness.client()
        filler = client.submit(verify_bundle)
        _wait_for(lambda: started, "filler dispatch")
        low = client.submit(verify_bundle, priority=5)
        high = client.submit(verify_bundle, priority=0)
        client.cancel(filler)
        _wait_for(lambda: len(started) >= 2, "second dispatch")
        assert started[1] == high
        release.set()
        client.wait(low, deadline_s=30)
        assert client.status(filler)["state"] == "cancelled"


class TestAdmissionValidation:
    """Malformed numeric submit fields must bounce typed at admission —
    never be admitted and then kill the dispatcher or the runner."""

    def _submit_raw(self, harness, verify_bundle, **fields):
        payload = {"op": "submit", "client": "bad", "bundle": verify_bundle}
        payload.update(fields)
        return harness.client().request(payload)

    @pytest.mark.parametrize(
        "fields",
        [
            {"workers": "lots"},
            {"workers": 0},
            {"workers": True},
            {"priority": "urgent"},
            {"timeout_s": "soon"},
            {"timeout_s": -1},
        ],
        ids=lambda f: "-".join(f"{k}={v}" for k, v in f.items()),
    )
    def test_malformed_field_rejected(self, daemon, verify_bundle, fields):
        harness = daemon()
        with pytest.raises(ServiceError) as err:
            self._submit_raw(harness, verify_bundle, **fields)
        assert err.value.code == "bad-request"

    def test_daemon_still_dispatches_after_bad_submit(
        self, daemon, verify_bundle
    ):
        """The original failure mode: a non-numeric workers value was
        admitted and the ValueError killed the dispatch loop, so the
        daemon accepted jobs but never ran another one."""
        harness = daemon()
        with pytest.raises(ServiceError):
            self._submit_raw(harness, verify_bundle, workers="lots")
        client = harness.client()
        job_id = client.submit(verify_bundle)
        assert client.wait(job_id, deadline_s=120)["state"] == "done"

    def test_dispatch_failure_fails_job_not_dispatcher(
        self, daemon, verify_bundle, monkeypatch
    ):
        """A per-job dispatch error (here: the lease call blowing up)
        fails that job; the dispatcher survives to run the next one."""
        harness = daemon(max_jobs=1)
        original = harness.service.leases.lease
        blown = []

        def flaky_lease(want=None):
            if not blown:
                blown.append(True)
                raise RuntimeError("lease exploded")
            return original(want)

        monkeypatch.setattr(harness.service.leases, "lease", flaky_lease)
        client = harness.client()
        first = client.submit(verify_bundle)
        job = client.wait(first, deadline_s=30)
        assert job["state"] == "failed"
        assert "lease exploded" in job["error"]
        second = client.submit(verify_bundle)
        assert client.wait(second, deadline_s=120)["state"] == "done"

    def test_runner_rejects_nonnumeric_timeout_from_record(
        self, verify_bundle, tmp_path
    ):
        """Defense in depth: a record that reached disk with a bad
        timeout (older daemon, hand edit) fails typed at job start, not
        with a TypeError at the first progress tick."""
        from repro.service.jobs import JobRecord, JobSpec, JobStore
        from repro.service.runner import CancelToken, run_job

        store = JobStore(tmp_path / "runner-state")
        spec = JobSpec(
            id="j000001", client="t", kind="verify",
            params={"bundle": verify_bundle}, timeout_s="soon",
        )
        with pytest.raises(ServiceError) as err:
            run_job(JobRecord(spec=spec), store, 1, CancelToken())
        assert err.value.code == "bad-request"


class TestCancellation:
    def test_cancel_queued_job(self, daemon, verify_bundle, monkeypatch):
        started, release = [], threading.Event()
        monkeypatch.setattr(
            daemon_mod, "run_job", _blocking_runner(started, release)
        )
        harness = daemon(max_jobs=1)
        client = harness.client()
        running = client.submit(verify_bundle)
        queued = client.submit(verify_bundle)
        assert client.cancel(queued) in ("queued", "cancelled")
        assert client.wait(queued, deadline_s=10)["state"] == "cancelled"
        release.set()
        assert client.wait(running, deadline_s=30)["state"] == "done"
        assert started == [running]  # the cancelled job never dispatched

    def test_cancel_running_campaign(self, daemon, verify_bundle, monkeypatch):
        """Cancelling a live campaign: the token trips at a progress tick
        inside the real engine and the job ends CANCELLED."""
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "1")
        harness = daemon(workers=1)
        client = harness.client()
        job_id = client.submit(verify_bundle)
        _wait_for(
            lambda: client.status(job_id)["state"] in ("running", "done"),
            "job start",
        )
        client.cancel(job_id, reason="operator said stop")
        job = client.wait(job_id, deadline_s=60)
        # A fast campaign may legitimately finish before the token trips.
        assert job["state"] in ("cancelled", "done")
        if job["state"] == "cancelled":
            assert "operator said stop" in job["error"]

    def test_deadline_cancels_job(self, daemon, verify_bundle, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "1")
        harness = daemon(workers=1)
        client = harness.client()
        job_id = client.submit(verify_bundle, timeout_s=1e-6)
        job = client.wait(job_id, deadline_s=60)
        assert job["state"] == "cancelled"
        assert "deadline" in job["error"]


class TestRestart:
    def test_graceful_shutdown_requeues_and_next_daemon_finishes(
        self, tmp_path, service_campaign, verify_bundle, monkeypatch
    ):
        from tests.service.conftest import DaemonHarness

        started, release = [], threading.Event()
        monkeypatch.setattr(
            daemon_mod, "run_job", _blocking_runner(started, release)
        )
        first = DaemonHarness(tmp_path, max_jobs=1).start()
        client = first.client()
        job_id = client.submit(verify_bundle)
        _wait_for(lambda: started, "job dispatch")
        first.stop()  # graceful: the in-flight job goes back to QUEUED
        record = first.service.store.load(job_id)
        assert record.state.value == "queued"

        monkeypatch.undo()  # the real runner for the second daemon
        second = DaemonHarness(tmp_path, max_jobs=1).start()
        try:
            job = second.client().wait(job_id, deadline_s=120)
            assert job["state"] == "done"
            assert job["attempts"] == 2
            result = second.client().result(job_id)
            assert_result_matches(
                result["result_path"], service_campaign["serial"]
            )
        finally:
            second.stop()


class TestWire:
    def _raw(self, harness, payload, read_n=1):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(harness.socket_path)
        try:
            sock.sendall(payload)
            frames = []
            with sock.makefile("rb") as fh:
                for _ in range(read_n):
                    line = fh.readline()
                    if not line:
                        break
                    frames.append(decode_frame(line))
            return frames
        finally:
            sock.close()

    def test_malformed_frame_gets_typed_error(self, daemon):
        harness = daemon()
        frames = self._raw(harness, b"this is not json\n")
        assert frames and frames[0]["ok"] is False
        assert frames[0]["error"]["code"] == "bad-frame"

    def test_connection_survives_malformed_frame(self, daemon):
        harness = daemon()
        frames = self._raw(
            harness, b"garbage\n" + b'{"op":"ping"}\n', read_n=2
        )
        assert frames[0]["error"]["code"] == "bad-frame"
        assert frames[1]["ok"] is True and frames[1]["pong"] is True

    def test_oversized_frame_rejected_and_closed(self, daemon, monkeypatch):
        monkeypatch.setenv(MAX_FRAME_ENV, "1024")
        harness = daemon()  # started under the small limit
        frames = self._raw(
            harness, b'{"op":"ping","pad":"' + b"x" * 4096 + b'"}\n'
        )
        assert frames and frames[0]["error"]["code"] == "frame-too-large"

    def test_unknown_op_rejected(self, daemon):
        harness = daemon()
        with pytest.raises(ServiceError) as err:
            harness.client().request({"op": "frobnicate"})
        assert err.value.code == "bad-request"

    def test_unknown_job_rejected(self, daemon):
        harness = daemon()
        with pytest.raises(ServiceError) as err:
            harness.client().status("j999999")
        assert err.value.code == "no-such-job"

    def test_submit_missing_bundle_rejected(self, daemon, tmp_path):
        harness = daemon()
        with pytest.raises(ServiceError) as err:
            harness.client().submit(str(tmp_path / "nope.bundle"))
        assert err.value.code == "bad-request"


def _probe_fd(fd, queue):
    import os

    try:
        os.fstat(fd)
        queue.put("open")
    except OSError:
        queue.put("closed")


class TestForkHygiene:
    def test_forked_children_close_inherited_listener(self, daemon):
        """Forked campaign workers must not inherit the daemon's
        listening socket: an orphaned worker outliving a crashed daemon
        would otherwise hold the dead listener open, and clients racing
        the restart would connect into a backlog nobody accepts."""
        import multiprocessing

        from repro.faults.parallel import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        harness = daemon()
        fd = harness.service._server.sockets[0].fileno()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        probe = ctx.Process(target=_probe_fd, args=(fd, queue))
        probe.start()
        probe.join(timeout=10)
        assert queue.get() == "closed"
        # The parent's own listener is untouched.
        assert harness.client().ping()["pong"] is True


class TestWatch:
    def test_watch_streams_progress_to_end(
        self, daemon, verify_bundle, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "1")
        harness = daemon(workers=1)
        client = harness.client()
        job_id = client.submit(verify_bundle)
        events = list(client.watch(job_id))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "state"
        assert kinds[-1] == "end"
        assert events[-1]["state"] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "expected at least one progress event"
        assert progress[-1]["done"] == progress[-1]["total"]

    def test_watch_terminal_job_replays_end(self, daemon, verify_bundle):
        harness = daemon()
        client = harness.client()
        job_id = client.submit(verify_bundle)
        client.wait(job_id, deadline_s=120)
        events = list(client.watch(job_id))
        assert [e["event"] for e in events] == ["state", "end"]
        assert events[-1]["state"] == "done"


def _wait_for(condition, what, deadline_s=30.0):
    start = time.monotonic()
    while not condition():
        if time.monotonic() - start > deadline_s:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.01)
