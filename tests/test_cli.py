"""CLI tests (tiny scale, temp results dir)."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    return tmp_path_factory.mktemp("cli-results")


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCLI:
    def test_info(self, capsys):
        code, out = _run(capsys, "info")
        assert code == 0
        assert "nmnist" in out and "tiny" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "lenet"])

    def test_train(self, capsys, results):
        code, out = _run(capsys, "train", "shd", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "test accuracy" in out

    def test_faultsim(self, capsys, results):
        code, out = _run(capsys, "faultsim", "shd", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "critical" in out

    def test_generate(self, capsys, results):
        code, out = _run(capsys, "generate", "shd", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "chunks" in out and "activated" in out

    def test_verify(self, capsys, results):
        code, out = _run(capsys, "verify", "shd", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "FC Critical neuron faults" in out

    def test_pack(self, capsys, results, tmp_path):
        out_file = tmp_path / "stored.npz"
        code, out = _run(capsys, "pack", "shd", "--scale", "tiny",
                         "--results", str(results), "-o", str(out_file))
        assert code == 0
        assert out_file.exists()

    def test_compact(self, capsys, results):
        code, out = _run(capsys, "compact", "shd", "--scale", "tiny",
                         "--results", str(results), "--tolerance", "0.05")
        assert code == 0
        assert "compaction kept" in out

    def test_catalog(self, capsys, results):
        code, out = _run(capsys, "catalog", "shd", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "FaultCatalog" in out

    def test_catalog_extended_with_collapse(self, capsys, results):
        code, out = _run(
            capsys, "catalog", "shd", "--scale", "tiny",
            "--results", str(results),
            "--fault-families", "extended",
            "--transient-window", "2:9",
            "--weight-bits", "16", "--datapath-bits", "6",
            "--bitflip-bits", "0,3,12",
            "--collapse", "--duration", "24",
        )
        assert code == 0
        assert "transient" in out
        assert "collapsed" in out

    def test_fault_override_uses_separate_cache(self, results):
        """An overridden fault model must not pollute the default cache
        namespace (the catalog artifacts differ), while the trained
        weights are shared."""
        from repro.cli import _build_parser, _pipeline

        base = _build_parser().parse_args(
            ["catalog", "shd", "--scale", "tiny", "--results", str(results)]
        )
        override = _build_parser().parse_args(
            ["catalog", "shd", "--scale", "tiny", "--results", str(results),
             "--fault-families", "extended"]
        )
        p_base, p_over = _pipeline(base), _pipeline(override)
        assert p_base.cache_dir != p_over.cache_dir
        assert "-faults" in p_over.cache_dir.name
        assert p_base._train_cache_dir == p_over._train_cache_dir
        assert len(p_over.fault_config.neuron_kinds) > len(
            p_base.fault_config.neuron_kinds
        )

    def test_bad_transient_window_rejected(self, results):
        with pytest.raises(SystemExit):
            main(["catalog", "shd", "--scale", "tiny", "--results", str(results),
                  "--transient-window", "nonsense"])

    def test_report_table1(self, capsys, results):
        code, out = _run(capsys, "report", "table1", "--scale", "tiny",
                         "--results", str(results))
        assert code == 0
        assert "Table I" in out
        assert (results / "table1_cli.txt").exists()

    def test_resume_flag_matches_fresh_run(self, capsys, results, tmp_path):
        """`--resume` on a fresh cache generates normally; re-running it
        resumes from the finished run's artifacts and prints the same
        summary (uses its own results dir so nothing is pre-cached)."""
        own = tmp_path / "resume-results"
        code, first = _run(capsys, "generate", "shd", "--scale", "tiny",
                           "--results", str(own), "--resume")
        assert code == 0
        assert "chunks" in first
        code, second = _run(capsys, "generate", "shd", "--scale", "tiny",
                            "--results", str(own), "--resume")
        assert code == 0
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_resume_continues_interrupted_generation(self, capsys, results):
        """Interrupt the cached pipeline's generation stage via chaos,
        then `--resume` must pick up the progress checkpoint and produce
        the identical artifact path contents as the earlier full run."""
        from repro.errors import ChaosError
        from repro.utils import chaos

        own_results = results  # train/faultsim cache shared with the suite
        cache = own_results / "cache" / "shd-tiny-seed0"
        stim = cache / "stimulus.npz"
        meta = cache / "generation.json"
        acts = cache / "activated.npz"
        reference = dict(np.load(stim)) if stim.exists() else None
        # Drop the finished artifacts so generation re-runs from scratch.
        for artifact in (stim, meta, acts):
            if artifact.exists():
                artifact.unlink()
        with chaos.installed(chaos.ChaosPolicy.parse("raise@generator-iteration:1")):
            with pytest.raises(ChaosError):
                _run(capsys, "generate", "shd", "--scale", "tiny",
                     "--results", str(own_results))
        assert (cache / "generation.progress.ckpt").exists()
        code, out = _run(capsys, "generate", "shd", "--scale", "tiny",
                         "--results", str(own_results), "--resume")
        assert code == 0
        assert not (cache / "generation.progress.ckpt").exists()
        if reference is not None:
            with np.load(stim) as resumed:
                assert set(resumed.files) == set(reference)
                for name in reference:
                    assert np.array_equal(resumed[name], reference[name])

    def test_pack_artifact_checks_clean_device(self, capsys, results, tmp_path):
        from repro.core.storage import StoredTest
        from repro.experiments import ExperimentPipeline, get_benchmark

        out_file = tmp_path / "stored.npz"
        _run(capsys, "pack", "shd", "--scale", "tiny",
             "--results", str(results), "-o", str(out_file))
        pipeline = ExperimentPipeline(
            get_benchmark("shd", "tiny"), results_dir=results, seed=0
        )
        stored = StoredTest.load(str(out_file))
        assert stored.check(pipeline.network(), exact=True)
