"""Tests for the three synthetic benchmark datasets and the base API."""

import numpy as np
import pytest

from repro.datasets import DVSGestureLike, NMNISTLike, SHDLike, SpikingDataset
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def nmnist():
    return NMNISTLike(train_size=40, test_size=20, size=16, steps=24, seed=0)


@pytest.fixture(scope="module")
def gestures():
    return DVSGestureLike(train_size=22, test_size=11, size=16, steps=24, seed=0)


@pytest.fixture(scope="module")
def shd():
    return SHDLike(train_size=40, test_size=20, channels=48, steps=24, seed=0)


class TestShapesAndDeterminism:
    def test_nmnist_shapes(self, nmnist):
        assert nmnist.train_inputs.shape == (24, 40, 2, 16, 16)
        assert nmnist.num_classes == 10
        assert nmnist.input_shape == (2, 16, 16)

    def test_gesture_shapes(self, gestures):
        assert gestures.train_inputs.shape == (24, 22, 2, 16, 16)
        assert gestures.num_classes == 11

    def test_shd_shapes(self, shd):
        assert shd.train_inputs.shape == (24, 40, 48)
        assert shd.num_classes == 20

    def test_binary_uint8(self, nmnist, gestures, shd):
        for ds in (nmnist, gestures, shd):
            assert ds.train_inputs.dtype == np.uint8
            assert set(np.unique(ds.train_inputs)).issubset({0, 1})

    def test_nonzero_activity(self, nmnist, gestures, shd):
        for ds in (nmnist, gestures, shd):
            per_sample = ds.train_inputs.reshape(ds.steps, ds.train_size, -1).sum(axis=(0, 2))
            assert np.all(per_sample > 0), f"{ds.name} has silent samples"

    def test_deterministic(self):
        a = NMNISTLike(train_size=10, test_size=5, size=16, steps=12, seed=3)
        b = NMNISTLike(train_size=10, test_size=5, size=16, steps=12, seed=3)
        assert np.array_equal(a.train_inputs, b.train_inputs)
        assert np.array_equal(a.test_inputs, b.test_inputs)

    def test_seed_changes_data(self):
        a = NMNISTLike(train_size=10, test_size=5, size=16, steps=12, seed=3)
        b = NMNISTLike(train_size=10, test_size=5, size=16, steps=12, seed=4)
        assert not np.array_equal(a.train_inputs, b.train_inputs)

    def test_all_classes_present(self, nmnist, gestures, shd):
        for ds in (nmnist, gestures, shd):
            assert set(ds.train_labels.tolist()) == set(range(ds.num_classes))

    def test_classes_distinguishable(self, shd):
        # Mean spatio-temporal pattern per class should differ between classes.
        means = []
        for c in range(4):
            mask = shd.train_labels == c
            means.append(shd.train_inputs[:, mask].mean(axis=1))
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.abs(means[i] - means[j]).sum() > 1.0

    def test_rejects_empty_split(self):
        with pytest.raises(DatasetError):
            NMNISTLike(train_size=0, test_size=5)


class TestBaseAPI:
    def test_sample_shape(self, nmnist):
        inputs, label = nmnist.sample(0, "test")
        assert inputs.shape == (24, 1, 2, 16, 16)
        assert inputs.dtype == np.float64
        assert 0 <= label < 10

    def test_sample_out_of_range(self, nmnist):
        with pytest.raises(DatasetError):
            nmnist.sample(10_000)

    def test_sample_bad_split(self, nmnist):
        with pytest.raises(DatasetError):
            nmnist.sample(0, "validation")

    def test_subset_first(self, nmnist):
        inputs, labels = nmnist.subset(5, "train")
        assert inputs.shape[1] == 5
        assert np.array_equal(labels, nmnist.train_labels[:5])

    def test_subset_random(self, nmnist):
        inputs, labels = nmnist.subset(5, "train", rng=np.random.default_rng(0))
        assert inputs.shape[1] == 5

    def test_subset_too_large(self, nmnist):
        with pytest.raises(DatasetError):
            nmnist.subset(10_000, "train")

    def test_batches_cover_split(self, nmnist):
        seen = 0
        for inputs, labels in nmnist.batches("train", 16, np.random.default_rng(0)):
            assert inputs.shape[0] == nmnist.steps
            assert inputs.shape[1] == labels.shape[0]
            seen += labels.shape[0]
        assert seen == nmnist.train_size

    def test_batches_shuffled(self, nmnist):
        first_a = next(iter(nmnist.batches("train", 8, np.random.default_rng(0))))[1]
        first_b = next(iter(nmnist.batches("train", 8, np.random.default_rng(1))))[1]
        assert not np.array_equal(first_a, first_b)

    def test_describe(self, nmnist):
        text = nmnist.describe()
        assert "nmnist-like" in text
        assert "10 classes" in text

    def test_constructor_validates_labels(self):
        with pytest.raises(DatasetError):
            SpikingDataset(
                name="bad",
                input_shape=(2,),
                num_classes=2,
                train_inputs=np.zeros((3, 2, 2), dtype=np.uint8),
                train_labels=np.array([0, 5]),
                test_inputs=np.zeros((3, 1, 2), dtype=np.uint8),
                test_labels=np.array([0]),
            )

    def test_constructor_validates_counts(self):
        with pytest.raises(DatasetError):
            SpikingDataset(
                name="bad",
                input_shape=(2,),
                num_classes=2,
                train_inputs=np.zeros((3, 2, 2), dtype=np.uint8),
                train_labels=np.array([0]),
                test_inputs=np.zeros((3, 1, 2), dtype=np.uint8),
                test_labels=np.array([0]),
            )
