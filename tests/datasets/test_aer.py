"""Tests for AER event conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.aer import event_count, event_rate, from_events, to_events
from repro.errors import DatasetError


class TestAER:
    def test_round_trip_flat(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((10, 7)) > 0.6).astype(float)
        events = to_events(dense)
        assert np.array_equal(from_events(events, 10, (7,)), dense)

    def test_round_trip_video(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((6, 2, 4, 4)) > 0.7).astype(float)
        events = to_events(dense)
        assert np.array_equal(from_events(events, 6, (2, 4, 4)), dense)

    def test_empty_stream(self):
        dense = np.zeros((5, 3))
        events = to_events(dense)
        assert events.size == 0
        assert np.array_equal(from_events(events, 5, (3,)), dense)

    def test_event_fields(self):
        dense = np.zeros((4, 3))
        dense[2, 1] = 1.0
        events = to_events(dense)
        assert events["t"].tolist() == [2]
        assert events["addr"].tolist() == [1]

    def test_counts_and_rate(self):
        dense = np.zeros((4, 3))
        dense[0, 0] = dense[3, 2] = 1.0
        assert event_count(dense) == 2
        assert event_rate(dense) == 0.5

    def test_rejects_bad_rank(self):
        with pytest.raises(DatasetError):
            to_events(np.zeros(5))

    def test_rejects_out_of_window_events(self):
        dense = np.zeros((4, 3))
        dense[3, 1] = 1.0
        events = to_events(dense)
        with pytest.raises(DatasetError):
            from_events(events, 2, (3,))

    def test_rejects_out_of_address_events(self):
        dense = np.zeros((4, 5))
        dense[0, 4] = 1.0
        events = to_events(dense)
        with pytest.raises(DatasetError):
            from_events(events, 4, (3,))

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, steps, channels):
        rng = np.random.default_rng(steps * 31 + channels)
        dense = (rng.random((steps, channels)) > 0.5).astype(float)
        assert np.array_equal(from_events(to_events(dense), steps, (channels,)), dense)

    def test_generated_stimulus_exportable(self, tmp_path):
        """A generated test stimulus survives an AER export/import."""
        dense = (np.random.default_rng(5).random((8, 1, 6)) > 0.5).astype(float)
        events = to_events(dense[:, 0])
        np.save(tmp_path / "events.npy", events)
        loaded = np.load(tmp_path / "events.npy")
        restored = from_events(loaded, 8, (6,))
        assert np.array_equal(restored, dense[:, 0])
