"""Tests for the shared event-synthesis primitives."""

import numpy as np
import pytest

from repro.datasets.generators import (
    digit_bitmap,
    frames_to_dvs_events,
    gaussian_blob,
    oriented_bar,
    shift_frame,
)
from repro.errors import DatasetError


class TestDigitBitmap:
    def test_all_digits_render(self):
        for d in range(10):
            bitmap = digit_bitmap(d, 16)
            assert bitmap.shape == (16, 16)
            assert bitmap.sum() > 0

    def test_digits_distinct(self):
        bitmaps = [digit_bitmap(d, 16) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(bitmaps[i], bitmaps[j]), (i, j)

    def test_eight_superset_of_one(self):
        eight = digit_bitmap(8, 16)
        one = digit_bitmap(1, 16)
        assert np.all(eight >= one)

    def test_margin_left_for_motion(self):
        bitmap = digit_bitmap(8, 16)
        assert bitmap[0].sum() == 0  # top row empty
        assert bitmap[-1].sum() == 0

    def test_rejects_bad_digit(self):
        with pytest.raises(DatasetError):
            digit_bitmap(10, 16)

    def test_rejects_small_canvas(self):
        with pytest.raises(DatasetError):
            digit_bitmap(3, 4)


class TestShiftFrame:
    def test_identity(self):
        frame = np.random.default_rng(0).random((5, 5))
        assert np.array_equal(shift_frame(frame, 0, 0), frame)

    def test_shift_down_right(self):
        frame = np.zeros((4, 4))
        frame[0, 0] = 1.0
        shifted = shift_frame(frame, 1, 2)
        assert shifted[1, 2] == 1.0
        assert shifted.sum() == 1.0

    def test_content_leaves_canvas(self):
        frame = np.zeros((4, 4))
        frame[3, 3] = 1.0
        assert shift_frame(frame, 1, 1).sum() == 0.0

    def test_negative_shift(self):
        frame = np.zeros((4, 4))
        frame[2, 2] = 1.0
        shifted = shift_frame(frame, -1, -2)
        assert shifted[1, 0] == 1.0


class TestDVSEvents:
    def test_on_off_polarity(self):
        frames = np.zeros((3, 4, 4))
        frames[1, 1, 1] = 1.0  # appears at t=1 -> ON event
        # disappears at t=2 -> OFF event
        events = frames_to_dvs_events(frames, threshold=0.5)
        assert events[0, 0, 1, 1] == 1  # ON
        assert events[0, 1, 1, 1] == 0
        assert events[1, 1, 1, 1] == 1  # OFF
        assert events[1, 0, 1, 1] == 0

    def test_static_scene_silent(self):
        frames = np.full((5, 4, 4), 0.7)
        assert frames_to_dvs_events(frames).sum() == 0

    def test_threshold_filters_small_changes(self):
        frames = np.zeros((2, 2, 2))
        frames[1] = 0.05
        assert frames_to_dvs_events(frames, threshold=0.1).sum() == 0

    def test_noise_adds_events(self):
        frames = np.zeros((11, 8, 8))
        rng = np.random.default_rng(0)
        events = frames_to_dvs_events(frames, noise_rate=0.2, rng=rng)
        assert events.sum() > 0

    def test_noise_requires_rng(self):
        with pytest.raises(DatasetError):
            frames_to_dvs_events(np.zeros((2, 2, 2)), noise_rate=0.1)

    def test_rejects_bad_shape(self):
        with pytest.raises(DatasetError):
            frames_to_dvs_events(np.zeros((1, 2, 2)))

    def test_output_dtype_uint8(self):
        frames = np.zeros((3, 2, 2))
        assert frames_to_dvs_events(frames).dtype == np.uint8


class TestBlobs:
    def test_gaussian_blob_peak_at_center(self):
        blob = gaussian_blob(9, (4.0, 4.0), 1.5)
        assert blob[4, 4] == blob.max()
        assert np.isclose(blob[4, 4], 1.0)

    def test_oriented_bar_elongated(self):
        bar = oriented_bar(15, (7.0, 7.0), 0.0, length=5.0, width=1.0)
        # Horizontal bar: wider along x than y.
        assert bar[7, 12] > bar[12, 7]

    def test_oriented_bar_rotates(self):
        vertical = oriented_bar(15, (7.0, 7.0), np.pi / 2, length=5.0, width=1.0)
        assert vertical[12, 7] > vertical[7, 12]
