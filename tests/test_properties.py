"""Property-based tests (hypothesis) on core data structures and
invariants that must hold for arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.autograd import functional as F
from repro.core.testset import TestStimulus
from repro.faults.bitflip import bitflip_value, int8_scale
from repro.faults.model import (
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.faults.simulator import (
    ClassificationResult,
    DetectionResult,
    FaultSimulator,
)
from repro.snn.neuron import LIFState, lif_step_numpy


# ----------------------------------------------------------------------
# LIF dynamics invariants
# ----------------------------------------------------------------------
@st.composite
def lif_trace(draw):
    steps = draw(st.integers(min_value=1, max_value=20))
    currents = draw(
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
            min_size=steps,
            max_size=steps,
        )
    )
    leak = draw(st.floats(min_value=0.1, max_value=1.0))
    threshold = draw(st.floats(min_value=0.1, max_value=3.0))
    refrac = draw(st.integers(min_value=0, max_value=4))
    return currents, leak, threshold, refrac


def _simulate(currents, leak, threshold, refrac):
    theta = np.full((1,), threshold)
    lk = np.full((1,), leak)
    rf = np.full((1,), refrac, dtype=np.int64)
    state = LIFState.zeros_numpy((1, 1))
    return [float(lif_step_numpy(np.array([[c]]), state, theta, lk, rf)[0, 0]) for c in currents]


class TestLIFProperties:
    @given(lif_trace())
    @settings(max_examples=150, deadline=None)
    def test_spikes_are_binary(self, trace):
        spikes = _simulate(*trace)
        assert set(spikes).issubset({0.0, 1.0})

    @given(lif_trace())
    @settings(max_examples=150, deadline=None)
    def test_refractory_gap_enforced(self, trace):
        currents, leak, threshold, refrac = trace
        spikes = _simulate(currents, leak, threshold, refrac)
        fire_times = [t for t, s in enumerate(spikes) if s == 1.0]
        for a, b in zip(fire_times, fire_times[1:]):
            assert b - a > refrac

    @given(lif_trace())
    @settings(max_examples=100, deadline=None)
    def test_no_input_no_spikes(self, trace):
        _, leak, threshold, refrac = trace
        spikes = _simulate([0.0] * 10, leak, threshold, refrac)
        assert sum(spikes) == 0.0


# ----------------------------------------------------------------------
# Test-stimulus assembly invariants (Eqs. 7-8)
# ----------------------------------------------------------------------
@st.composite
def chunk_durations(draw):
    return draw(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=6))


class TestStimulusProperties:
    @given(chunk_durations())
    @settings(max_examples=100, deadline=None)
    def test_eq8_duration(self, durations):
        chunks = [np.ones((d, 1, 3)) for d in durations]
        stim = TestStimulus(chunks=chunks, input_shape=(3,))
        expected = sum(2 * d for d in durations[:-1]) + durations[-1]
        assert stim.duration_steps == expected
        assert stim.assembled().shape[0] == expected

    @given(chunk_durations())
    @settings(max_examples=100, deadline=None)
    def test_sleep_gaps_are_silent(self, durations):
        rng = np.random.default_rng(0)
        chunks = [(rng.random((d, 1, 3)) > 0.5).astype(float) for d in durations]
        stim = TestStimulus(chunks=chunks, input_shape=(3,))
        assembled = stim.assembled()
        cursor = 0
        for chunk in chunks[:-1]:
            cursor += chunk.shape[0]
            gap = assembled[cursor : cursor + chunk.shape[0]]
            assert gap.sum() == 0.0
            cursor += chunk.shape[0]

    @given(chunk_durations())
    @settings(max_examples=50, deadline=None)
    def test_assembled_preserves_chunk_content(self, durations):
        rng = np.random.default_rng(1)
        chunks = [(rng.random((d, 1, 3)) > 0.5).astype(float) for d in durations]
        stim = TestStimulus(chunks=chunks, input_shape=(3,))
        assembled = stim.assembled()
        cursor = 0
        for i, chunk in enumerate(chunks):
            assert np.array_equal(assembled[cursor : cursor + chunk.shape[0]], chunk)
            cursor += chunk.shape[0] * (2 if i < len(chunks) - 1 else 1)


# ----------------------------------------------------------------------
# Campaign-level invariants: FaultSimulator.coverage()
# ----------------------------------------------------------------------
@st.composite
def campaign_outcome(draw):
    """An arbitrary (detection, classification) result pair over a mixed
    neuron/synapse fault list, including NaN accuracy drops (the chunked
    early-exit marker)."""
    n = draw(st.integers(min_value=0, max_value=40))
    is_neuron = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    detected = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool)
    critical = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool)
    drops = np.array(
        draw(
            st.lists(
                st.one_of(
                    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                    st.just(float("nan")),
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    faults = [
        NeuronFault(0, i, NeuronFaultKind.DEAD)
        if neuron
        else SynapseFault(0, 0, i, SynapseFaultKind.DEAD)
        for i, neuron in enumerate(is_neuron)
    ]
    detection = DetectionResult(
        faults=faults,
        detected=detected,
        output_l1=detected.astype(float),
        class_count_diff=np.zeros((n, 4)),
        wall_time=0.0,
    )
    classification = ClassificationResult(
        faults=list(faults),
        critical=critical,
        accuracy_drop=drops,
        nominal_accuracy=1.0,
        wall_time=0.0,
    )
    return detection, classification


class TestCoverageProperties:
    @given(campaign_outcome())
    @settings(max_examples=200, deadline=None)
    def test_rates_in_unit_interval(self, outcome):
        detection, classification = outcome
        coverage = FaultSimulator.coverage(detection, classification)
        for _, value in coverage.rows():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= coverage.fc_overall <= 1.0

    @given(campaign_outcome())
    @settings(max_examples=200, deadline=None)
    def test_counts_partition_catalog(self, outcome):
        detection, classification = outcome
        coverage = FaultSimulator.coverage(detection, classification)
        assert sum(coverage.counts.values()) == len(detection.faults)
        assert all(count >= 0 for count in coverage.counts.values())

    @given(campaign_outcome())
    @settings(max_examples=200, deadline=None)
    def test_empty_classes_report_vacuous_full_coverage(self, outcome):
        detection, classification = outcome
        coverage = FaultSimulator.coverage(detection, classification)
        labels = {
            "critical_neuron": coverage.fc_critical_neuron,
            "benign_neuron": coverage.fc_benign_neuron,
            "critical_synapse": coverage.fc_critical_synapse,
            "benign_synapse": coverage.fc_benign_synapse,
        }
        for key, rate in labels.items():
            if coverage.counts[key] == 0:
                assert rate == 1.0

    @given(campaign_outcome())
    @settings(max_examples=200, deadline=None)
    def test_overall_rate_is_detected_fraction(self, outcome):
        detection, classification = outcome
        coverage = FaultSimulator.coverage(detection, classification)
        n = len(detection.faults)
        if n == 0:
            assert coverage.fc_overall == 1.0
        else:
            assert coverage.fc_overall == float(detection.detected.sum() / n)

    @given(campaign_outcome())
    @settings(max_examples=200, deadline=None)
    def test_max_drop_ignores_nan_markers(self, outcome):
        detection, classification = outcome
        coverage = FaultSimulator.coverage(detection, classification)
        assert not np.isnan(coverage.max_drop_undetected_neuron)
        assert not np.isnan(coverage.max_drop_undetected_synapse)


# ----------------------------------------------------------------------
# Quantisation / STE / Gumbel properties
# ----------------------------------------------------------------------
class TestNumericProperties:
    @given(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=200, deadline=None)
    def test_bitflip_changes_or_preserves_within_scale(self, value, bit):
        weights = np.array([value, 1.0, -1.0])
        scale = int8_scale(weights)
        flipped = bitflip_value(value, bit, scale)
        # The perturbation magnitude is exactly 2^bit quantisation steps
        # (or the sign-bit two's-complement jump), never more than 256 steps.
        assert abs(flipped - np.clip(round(value / scale), -128, 127) * scale) <= 256 * scale

    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_ste_output_binary(self, values):
        out = F.ste_binarize(Tensor(np.array(values)))
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    @given(
        st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=1, max_size=20),
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_gumbel_softmax_in_unit_interval(self, values, tau):
        out = F.gumbel_softmax(
            Tensor(np.array(values)), tau, np.random.default_rng(0)
        )
        assert np.all(out.data >= 0.0) and np.all(out.data <= 1.0)

    @given(st.lists(st.floats(min_value=-4, max_value=4, allow_nan=False), min_size=2, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_softmax_is_distribution(self, values):
        out = F.softmax(Tensor(np.array([values])))
        assert np.all(out.data >= 0.0)
        assert np.isclose(out.data.sum(), 1.0)
