"""Property tests for systematic fault collapsing.

The contract of :func:`repro.faults.collapse.collapse_catalog` has two
tiers, and this suite pins both by *simulation*, not by inspecting the
rules:

- **Equivalence tier** (no-ops, undetectable sites, same-induced-value
  classes): reconstructing the full catalog's detection map with
  ``expand_detection`` from a campaign over only the kept faults is
  *bit-identical* to simulating the full catalog.
- **Dominance tier** (end-of-test-aligned DEAD/SATURATED windows): the
  reconstruction is a sound lower bound — a dropped fault is truly
  detected whenever its kept representative is — so campaign-level
  coverage is never overstated.

Plus the algebra of :func:`dominates` (strict partial order) and the
sub-resolution bit-flip equivalence class from the datapath truncation
grid.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.catalog import build_catalog
from repro.faults.collapse import (
    REASON_DOMINATED,
    REASON_EQUIVALENT,
    REASON_NOOP_BITFLIP,
    collapse_catalog,
    dominates,
)
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import DenseSpec, NetworkSpec, RecurrentSpec, build_network
from repro.snn.neuron import LIFParameters
from repro.snn.quantize import quantize_network

DURATION = 12


def _dense_net(seed=0, input_dim=6, hidden=5, out=3):
    spec = NetworkSpec(
        name="collapse-dense",
        input_shape=(input_dim,),
        layers=(DenseSpec(out_features=hidden), DenseSpec(out_features=out)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


def _recurrent_net(seed=4):
    spec = NetworkSpec(
        name="collapse-rec",
        input_shape=(6,),
        layers=(RecurrentSpec(out_features=5), DenseSpec(out_features=3)),
        lif=LIFParameters(leak=0.85, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


def _detect_map(net, config, faults, stimulus):
    if not faults:
        return {}
    result = FaultSimulator(net, config).detect(stimulus, faults)
    return {fault: bool(det) for fault, det in zip(faults, result.detected)}


def _stimulus(rng, input_dim, steps=DURATION, density=0.5):
    return (rng.random((steps, 1, input_dim)) < density).astype(float)


EXTENDED = FaultModelConfig(
    neuron_kinds=tuple(NeuronFaultKind),
    bitflip_bits=(0, 3, 6),
    transient_windows=((2, 7), (4, DURATION)),
    transient_neuron_kinds=(
        NeuronFaultKind.DEAD,
        NeuronFaultKind.SATURATED,
        NeuronFaultKind.PARAM_THRESHOLD,
    ),
    transient_synapse_kinds=(SynapseFaultKind.DEAD, SynapseFaultKind.BITFLIP),
)


# ----------------------------------------------------------------------
# Equivalence tier: expansion is bit-identical to the full campaign
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    net_seed=st.integers(0, 50),
    stim_seed=st.integers(0, 2**16),
    density=st.sampled_from([0.2, 0.5, 0.9]),
    recurrent=st.booleans(),
)
def test_equivalence_collapse_preserves_detection_exactly(
    net_seed, stim_seed, density, recurrent
):
    net = _recurrent_net(net_seed) if recurrent else _dense_net(net_seed)
    catalog = build_catalog(net, EXTENDED)
    # No duration: only window-independent (equivalence-tier) rules apply,
    # so every dropped fault's outcome is reconstructible exactly.
    collapsed = collapse_catalog(net, catalog)
    assert REASON_DOMINATED not in collapsed.reasons
    stimulus = _stimulus(
        np.random.default_rng(stim_seed), net.input_shape[0], density=density
    )
    full = _detect_map(net, EXTENDED, catalog.faults, stimulus)
    kept = _detect_map(net, EXTENDED, collapsed.kept, stimulus)
    expanded = collapsed.expand_detection(kept)
    assert set(expanded) == set(full)
    for fault in catalog.faults:
        assert expanded[fault] == full[fault], fault.describe()


# ----------------------------------------------------------------------
# Dominance tier: sound lower bound, never overstates coverage
# ----------------------------------------------------------------------
def _aligned_config():
    return FaultModelConfig(
        transient_windows=((3, DURATION), (6, DURATION), (9, DURATION)),
        transient_neuron_kinds=(NeuronFaultKind.DEAD, NeuronFaultKind.SATURATED),
        transient_synapse_kinds=(),
    )


def test_dominance_pass_drops_aligned_chains():
    net = _dense_net(0)
    catalog = build_catalog(net, _aligned_config())
    collapsed = collapse_catalog(net, catalog, duration_steps=DURATION)
    # Output-layer DEAD/SAT sites each carry a 4-member aligned chain
    # (permanent + three aligned windows); all but the hardest drop.
    assert collapsed.reasons.get(REASON_DOMINATED, 0) >= 2 * 3 * 2
    for fault, reason in collapsed.dropped:
        if reason != REASON_DOMINATED:
            continue
        rep = collapsed.representatives[fault]
        assert dominates(fault, rep, DURATION)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(stim_seed=st.integers(0, 2**16), density=st.sampled_from([0.1, 0.4, 0.8]))
def test_dominance_is_sound_lower_bound(stim_seed, density):
    net = _dense_net(1)
    catalog = build_catalog(net, _aligned_config())
    collapsed = collapse_catalog(net, catalog, duration_steps=DURATION)
    stimulus = _stimulus(np.random.default_rng(stim_seed), 6, density=density)
    full = _detect_map(net, catalog.config, catalog.faults, stimulus)
    kept = _detect_map(net, catalog.config, collapsed.kept, stimulus)
    expanded = collapsed.expand_detection(kept)
    dominated = {f for f, r in collapsed.dropped if r == REASON_DOMINATED}
    for fault in catalog.faults:
        if fault in dominated:
            # Implication only: detected(kept rep) => truly detected.
            assert not expanded[fault] or full[fault], fault.describe()
        else:
            assert expanded[fault] == full[fault], fault.describe()
    # Campaign-level coverage is never overstated.
    assert sum(expanded.values()) <= sum(full.values())


# ----------------------------------------------------------------------
# dominates() is a strict partial order
# ----------------------------------------------------------------------
def _aligned_fault(t0, kind=NeuronFaultKind.DEAD):
    window = None if t0 == 0 else (t0, DURATION)
    return NeuronFault(1, 0, kind, window=window)


_STARTS = st.integers(0, DURATION - 1)


@settings(max_examples=50, deadline=None)
@given(ta=_STARTS, tb=_STARTS)
def test_dominates_irreflexive_antisymmetric(ta, tb):
    a, b = _aligned_fault(ta), _aligned_fault(tb)
    assert not dominates(a, a, DURATION)
    assert not (dominates(a, b, DURATION) and dominates(b, a, DURATION))


@settings(max_examples=50, deadline=None)
@given(ta=_STARTS, tb=_STARTS, tc=_STARTS)
def test_dominates_transitive(ta, tb, tc):
    a, b, c = _aligned_fault(ta), _aligned_fault(tb), _aligned_fault(tc)
    if dominates(a, b, DURATION) and dominates(b, c, DURATION):
        assert dominates(a, c, DURATION)


def test_dominates_requires_matching_site_and_kind():
    a = _aligned_fault(0)
    assert not dominates(a, _aligned_fault(3, NeuronFaultKind.SATURATED), DURATION)
    assert not dominates(
        a, NeuronFault(1, 1, NeuronFaultKind.DEAD, window=(3, DURATION)), DURATION
    )
    # Non-aligned windows never participate.
    assert not dominates(
        a, NeuronFault(1, 0, NeuronFaultKind.DEAD, window=(3, DURATION - 1)), DURATION
    )
    # Timing faults are membrane-dependent: excluded.
    assert not dominates(
        NeuronFault(1, 0, NeuronFaultKind.TIMING_THRESHOLD),
        NeuronFault(
            1, 0, NeuronFaultKind.TIMING_THRESHOLD, window=(3, DURATION)
        ),
        DURATION,
    )


# ----------------------------------------------------------------------
# Sub-resolution bit-flips collapse to no-ops
# ----------------------------------------------------------------------
def test_subresolution_bitflips_collapse_to_noops():
    """With a 16-bit stored word read through a 6-bit datapath, flips of
    bits 0..9 move the code by less than half a datapath LSB, so the
    truncation grid snaps the weight back to its nominal value: exact
    no-ops, dropped without simulation."""
    net = _dense_net(2)
    quantize_network(net, bits=6)  # weights on the 6-bit datapath grid
    config = FaultModelConfig(
        neuron_kinds=(),
        synapse_kinds=(SynapseFaultKind.BITFLIP,),
        weight_bits=16,
        datapath_bits=6,
        bitflip_bits=tuple(range(10)),
    )
    catalog = build_catalog(net, config)
    assert len(catalog.synapse_faults) > 0
    collapsed = collapse_catalog(net, catalog)
    noops = [f for f, r in collapsed.dropped if r == REASON_NOOP_BITFLIP]
    assert len(noops) == len(catalog.synapse_faults)
    assert not collapsed.kept
    # Soundness by simulation: none of the dropped flips is detectable.
    stimulus = _stimulus(np.random.default_rng(9), 6, density=0.9)
    full = _detect_map(net, config, catalog.faults, stimulus)
    assert not any(full.values())


def test_above_resolution_bitflips_are_kept_and_detectable():
    net = _dense_net(2)
    quantize_network(net, bits=6)
    config = FaultModelConfig(
        neuron_kinds=(),
        synapse_kinds=(SynapseFaultKind.BITFLIP,),
        weight_bits=16,
        datapath_bits=6,
        bitflip_bits=(12, 14),  # above the 10-bit sub-resolution band
    )
    catalog = build_catalog(net, config)
    collapsed = collapse_catalog(net, catalog)
    assert not any(r == REASON_NOOP_BITFLIP for _, r in collapsed.dropped)
    stimulus = _stimulus(np.random.default_rng(9), 6, density=0.9)
    kept_map = _detect_map(net, config, collapsed.kept, stimulus)
    assert any(kept_map.values()), "high-bit flips must be detectable"


def test_equivalent_bitflips_share_one_representative():
    """Unquantized weights: sub-resolution flips all truncate to the same
    (non-nominal) faulty value, so they form one equivalence class per
    weight rather than no-ops."""
    net = _dense_net(3)  # raw float weights, off the datapath grid
    config = FaultModelConfig(
        neuron_kinds=(),
        synapse_kinds=(SynapseFaultKind.BITFLIP,),
        weight_bits=16,
        datapath_bits=6,
        bitflip_bits=(0, 1, 2),
    )
    catalog = build_catalog(net, config)
    collapsed = collapse_catalog(net, catalog)
    dropped_eq = [f for f, r in collapsed.dropped if r == REASON_EQUIVALENT]
    # Three flips per weight collapse to one kept representative each.
    assert len(collapsed.kept) * 2 == len(dropped_eq)
    for fault in dropped_eq:
        rep = collapsed.representatives[fault]
        assert (rep.module_index, rep.parameter_index, rep.weight_index) == (
            fault.module_index, fault.parameter_index, fault.weight_index,
        )
