"""Differential suite for the extended fault families.

PR 5 proved the segmented engine exactly matches the assembled campaign
for the paper's classic catalog.  This suite extends the obligation to
the full extended model — parametric neuron faults, delay faults,
weight-memory bit-flips, and time-windowed transients — across every
execution mode:

1. **serial**: ``FaultSimulator(neuron_batch=1, synapse_batch=1,
   neuron_splice=False)`` on the assembled stimulus (one LIF loop per
   fault — the semantic reference implementation),
2. **K-batched**: the default simulator on the assembled stimulus,
3. **process-parallel**: ``parallel_detect`` / ``parallel_detect_segmented``
   with 4 workers (the ``REPRO_WORKERS=4`` production path),
4. **segmented**: ``detect_segmented`` with fault dropping and
   divergence-bounded propagation enabled.

All comparisons are ``np.array_equal`` on the ``detected`` mask — no
tolerances.  The physically subtle case is pinned explicitly: a
transient fault whose activity window straddles a segment boundary,
where the segmented engine must swap the faulty parameter mid-campaign
while carrying LIF membrane state (and, for DELAY faults, the golden
trace history) across the boundary.
"""

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.testset import TestStimulus
from repro.faults.catalog import build_catalog
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.faults.parallel import (
    fork_available,
    parallel_detect,
    parallel_detect_segmented,
)
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters

# Segment layout [4, 3, 5] -> segment spans [0, 8), [8, 14), [14, 19).
# The (5, 16) window straddles BOTH internal boundaries; (2, 9) straddles
# the first.  (The assembled test is 19 steps long.)
CHUNKS = [4, 3, 5]
STRADDLING = (5, 16)

EXTENDED = FaultModelConfig(
    neuron_kinds=tuple(NeuronFaultKind),
    bitflip_bits=(0, 3, 6),
    transient_windows=((2, 9), STRADDLING),
    transient_neuron_kinds=(
        NeuronFaultKind.DEAD,
        NeuronFaultKind.PARAM_THRESHOLD,
        NeuronFaultKind.DELAY,
    ),
    transient_synapse_kinds=(SynapseFaultKind.DEAD, SynapseFaultKind.BITFLIP),
)


def _mixed_net():
    spec = NetworkSpec(
        name="mixed",
        input_shape=(2, 6, 6),
        layers=(
            ConvSpec(out_channels=3, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=8),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _recurrent_net():
    spec = NetworkSpec(
        name="recurrent",
        input_shape=(10,),
        layers=(RecurrentSpec(out_features=7), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.85, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(3))


def _family(fault):
    """Coarse family label used for stratified catalog sampling."""
    if isinstance(fault, SynapseFault):
        kind = "bitflip" if fault.kind is SynapseFaultKind.BITFLIP else "synapse"
    elif fault.kind is NeuronFaultKind.DELAY:
        kind = "delay"
    elif fault.kind.is_parametric:
        kind = "parametric"
    else:
        kind = "neuron"
    return kind, fault.window is not None


def _stratified_faults(net, config, per_family=8):
    """A catalog subsample with every (family, transient?) cell populated."""
    catalog = build_catalog(net, config)
    groups = {}
    for fault in catalog.faults:
        groups.setdefault(_family(fault), []).append(fault)
    picked = []
    for key in sorted(groups):
        members = groups[key]
        stride = max(1, len(members) // per_family)
        picked.extend(members[::stride][:per_family])
    return picked


def _stimulus(input_shape, chunk_durations, rng, density=0.4):
    chunks = [
        (rng.random((d, 1) + input_shape) < density).astype(float)
        for d in chunk_durations
    ]
    return TestStimulus(chunks=chunks, input_shape=input_shape)


@pytest.fixture(scope="module")
def mixed_campaign():
    net = _mixed_net()
    faults = _stratified_faults(net, EXTENDED)
    stimulus = _stimulus((2, 6, 6), CHUNKS, np.random.default_rng(1))
    simulator = FaultSimulator(net, EXTENDED)
    return {
        "net": net,
        "simulator": simulator,
        "faults": faults,
        "stimulus": stimulus,
        "reference": simulator.detect(stimulus.assembled(), faults),
    }


@pytest.fixture(scope="module")
def recurrent_campaign():
    net = _recurrent_net()
    faults = _stratified_faults(net, EXTENDED, per_family=6)
    stimulus = _stimulus((10,), [5, 4], np.random.default_rng(2))
    simulator = FaultSimulator(net, EXTENDED)
    return {
        "net": net,
        "simulator": simulator,
        "faults": faults,
        "stimulus": stimulus,
        "reference": simulator.detect(stimulus.assembled(), faults),
    }


def test_sample_covers_all_families(mixed_campaign):
    """The differential fixtures actually exercise every family — a
    regression guard against the sampler silently dropping one."""
    families = {_family(f) for f in mixed_campaign["faults"]}
    for kind in ("neuron", "parametric", "delay", "synapse", "bitflip"):
        assert (kind, False) in families or kind == "delay", kind
    # Transient variants of each configured transient kind:
    assert ("neuron", True) in families  # DEAD in a window
    assert ("parametric", True) in families
    assert ("delay", True) in families
    assert ("synapse", True) in families
    assert ("bitflip", True) in families
    bits = {f.bit for f in mixed_campaign["faults"]
            if isinstance(f, SynapseFault) and f.bit is not None}
    assert len(bits) > 1, "bitflip sample must cover multiple bit positions"


# ----------------------------------------------------------------------
# Engine 1: serial reference vs K-batched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("campaign", ["mixed_campaign", "recurrent_campaign"])
def test_serial_matches_kbatched(campaign, request):
    data = request.getfixturevalue(campaign)
    serial = FaultSimulator(
        data["net"], EXTENDED,
        neuron_batch=1, synapse_batch=1, neuron_splice=False,
    )
    result = serial.detect(data["stimulus"].assembled(), data["faults"])
    reference = data["reference"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)


# ----------------------------------------------------------------------
# Engine 4: segmented, all optimisation combos
# ----------------------------------------------------------------------
OPTION_GRID = list(itertools.product([False, True], repeat=3))


@pytest.mark.parametrize("drop,div,comp", OPTION_GRID)
@pytest.mark.parametrize("campaign", ["mixed_campaign", "recurrent_campaign"])
def test_segmented_matches_assembled(campaign, request, drop, div, comp):
    data = request.getfixturevalue(campaign)
    result = data["simulator"].detect_segmented(
        data["stimulus"], data["faults"],
        drop_detected=drop, divergence_exit=div, compact_batches=comp,
    )
    assert np.array_equal(result.detected, data["reference"].detected)
    if not drop:
        assert np.array_equal(result.output_l1, data["reference"].output_l1)
        assert np.array_equal(
            result.class_count_diff, data["reference"].class_count_diff
        )


def test_segmented_sequential_path_matches(mixed_campaign):
    """synapse_batch=1 / no splice exercises the one-at-a-time segmented
    group kinds (piecewise manual weight swap for windowed synapse faults)."""
    serial = FaultSimulator(
        mixed_campaign["net"], EXTENDED,
        neuron_batch=1, synapse_batch=1, neuron_splice=False,
    )
    result = serial.detect_segmented(
        mixed_campaign["stimulus"], mixed_campaign["faults"], drop_detected=False
    )
    reference = mixed_campaign["reference"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)


# ----------------------------------------------------------------------
# Engine 3: process-parallel (REPRO_WORKERS=4)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
@pytest.mark.parametrize("campaign", ["mixed_campaign", "recurrent_campaign"])
def test_parallel_assembled_matches(campaign, request):
    data = request.getfixturevalue(campaign)
    result = parallel_detect(
        data["simulator"], data["stimulus"].assembled(), data["faults"], workers=4
    )
    assert np.array_equal(result.detected, data["reference"].detected)
    assert np.array_equal(result.output_l1, data["reference"].output_l1)


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
@pytest.mark.parametrize("drop", [False, True])
@pytest.mark.parametrize("campaign", ["mixed_campaign", "recurrent_campaign"])
def test_parallel_segmented_matches(campaign, request, drop):
    data = request.getfixturevalue(campaign)
    result = parallel_detect_segmented(
        data["simulator"], data["stimulus"], data["faults"],
        workers=4, drop_detected=drop, divergence_exit=True,
    )
    assert np.array_equal(result.detected, data["reference"].detected)
    if not drop:
        assert np.array_equal(result.output_l1, data["reference"].output_l1)


# ----------------------------------------------------------------------
# Transient faults straddling a segment boundary
# ----------------------------------------------------------------------
def _straddling_faults(net):
    """One fault per family whose window crosses both internal segment
    boundaries of the CHUNKS layout."""
    last = int(net.spiking_indices[-1])
    first = int(net.spiking_indices[0])
    weights = net.modules[first].parameters()[0].data
    return [
        NeuronFault(last, 0, NeuronFaultKind.DEAD, window=STRADDLING),
        NeuronFault(last, 1, NeuronFaultKind.SATURATED, window=STRADDLING),
        NeuronFault(
            last, 2, NeuronFaultKind.PARAM_THRESHOLD, scale=4.0, window=STRADDLING
        ),
        NeuronFault(last, 3, NeuronFaultKind.DELAY, delay=2, window=STRADDLING),
        SynapseFault(first, 0, 0, SynapseFaultKind.DEAD, window=STRADDLING),
        SynapseFault(
            first, 0, min(1, weights.size - 1), SynapseFaultKind.BITFLIP,
            bit=6, window=STRADDLING,
        ),
    ]


@pytest.mark.parametrize("campaign", ["mixed_campaign", "recurrent_campaign"])
def test_straddling_window_segmented_exact(campaign, request):
    """A transient active across [5, 16) with segments [0,8)/[8,14)/[14,19):
    the segmented engine activates the fault mid-segment-0, keeps it live
    through all of segment 1, and deactivates it mid-segment-2 — while
    carrying membrane (and delay-history) state.  Must equal assembled."""
    data = request.getfixturevalue(campaign)
    faults = _straddling_faults(data["net"])
    reference = data["simulator"].detect(data["stimulus"].assembled(), faults)
    for drop, div, comp in OPTION_GRID:
        result = data["simulator"].detect_segmented(
            data["stimulus"], faults,
            drop_detected=drop, divergence_exit=div, compact_batches=comp,
        )
        assert np.array_equal(result.detected, reference.detected), (drop, div, comp)


def test_straddling_window_is_load_bearing(mixed_campaign):
    """Sanity for the test above: the straddling window actually changes
    behaviour — a saturated transient is detected, and its detection
    differs from the permanent variant's output trace."""
    net = mixed_campaign["net"]
    last = int(net.spiking_indices[-1])
    windowed = NeuronFault(last, 1, NeuronFaultKind.SATURATED, window=STRADDLING)
    permanent = NeuronFault(last, 1, NeuronFaultKind.SATURATED)
    simulator = mixed_campaign["simulator"]
    assembled = mixed_campaign["stimulus"].assembled()
    both = simulator.detect(assembled, [windowed, permanent])
    assert both.detected[0], "transient saturation inside the test must detect"
    # The transient corrupts fewer steps than the permanent fault, so its
    # L1 divergence must be strictly smaller (19 driven+sleep steps vs 11).
    assert both.output_l1[0] < both.output_l1[1]


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
def test_straddling_window_parallel_segmented(mixed_campaign):
    faults = _straddling_faults(mixed_campaign["net"])
    reference = mixed_campaign["simulator"].detect(
        mixed_campaign["stimulus"].assembled(), faults
    )
    result = parallel_detect_segmented(
        mixed_campaign["simulator"], mixed_campaign["stimulus"], faults,
        workers=4, drop_detected=True, divergence_exit=True,
    )
    assert np.array_equal(result.detected, reference.detected)


# ----------------------------------------------------------------------
# Fused one-BLAS-call path vs legacy per-step path (all-T stacked
# matmuls + optional float32 behind the exactness gate)
# ----------------------------------------------------------------------
EXTENDED_F32 = dataclasses.replace(EXTENDED, dtype="float32")


def _assert_detect_fields_equal(result, reference):
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)


@pytest.fixture(scope="module")
def legacy_reference(mixed_campaign):
    """The per-step unfused float64 engine — the semantic baseline the
    fused path must reproduce bit-for-bit."""
    legacy = FaultSimulator(mixed_campaign["net"], EXTENDED, fused=False)
    return legacy.detect(
        mixed_campaign["stimulus"].assembled(), mixed_campaign["faults"]
    )


@pytest.mark.parametrize("config", [EXTENDED, EXTENDED_F32],
                         ids=["float64", "float32-gated"])
def test_fused_serial_matches_legacy(mixed_campaign, legacy_reference, config):
    fused = FaultSimulator(mixed_campaign["net"], config, fused=True)
    result = fused.detect(
        mixed_campaign["stimulus"].assembled(), mixed_campaign["faults"]
    )
    _assert_detect_fields_equal(result, legacy_reference)
    assert result.dtype == config.dtype


@pytest.mark.parametrize("config", [EXTENDED, EXTENDED_F32],
                         ids=["float64", "float32-gated"])
def test_fused_segmented_matches_legacy(mixed_campaign, legacy_reference, config):
    fused = FaultSimulator(mixed_campaign["net"], config, fused=True)
    result = fused.detect_segmented(
        mixed_campaign["stimulus"], mixed_campaign["faults"], drop_detected=False
    )
    _assert_detect_fields_equal(result, legacy_reference)
    assert result.dtype == config.dtype
    if config.dtype == "float32":
        # The gate must account for every group one way or the other.
        assert result.f32_groups + result.f32_fallbacks > 0


@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
@pytest.mark.parametrize("config", [EXTENDED, EXTENDED_F32],
                         ids=["float64", "float32-gated"])
def test_fused_parallel_matches_legacy(mixed_campaign, legacy_reference, config):
    fused = FaultSimulator(mixed_campaign["net"], config, fused=True)
    result = parallel_detect(
        fused, mixed_campaign["stimulus"].assembled(),
        mixed_campaign["faults"], workers=4,
    )
    _assert_detect_fields_equal(result, legacy_reference)


def test_fused_recurrent_matches_legacy(recurrent_campaign):
    """Recurrent layers cannot fuse the full matmul (the recurrent term
    feeds back per step) but still use the fused input-current stack —
    must stay bit-identical, including under the f32 gate."""
    legacy = FaultSimulator(recurrent_campaign["net"], EXTENDED, fused=False)
    reference = legacy.detect(
        recurrent_campaign["stimulus"].assembled(), recurrent_campaign["faults"]
    )
    for config in (EXTENDED, EXTENDED_F32):
        fused = FaultSimulator(recurrent_campaign["net"], config, fused=True)
        result = fused.detect(
            recurrent_campaign["stimulus"].assembled(), recurrent_campaign["faults"]
        )
        _assert_detect_fields_equal(result, reference)


@pytest.mark.parametrize("time_block", [1, 3, 4, 7, 19])
def test_transient_straddles_time_block_boundary(mixed_campaign, time_block):
    """The fused engine processes time in blocks; a transient whose
    window [5, 16) cuts through block boundaries must swap parameters
    mid-block exactly as the per-step engine does."""
    faults = _straddling_faults(mixed_campaign["net"])
    assembled = mixed_campaign["stimulus"].assembled()
    legacy = FaultSimulator(mixed_campaign["net"], EXTENDED, fused=False)
    reference = legacy.detect(assembled, faults)
    for config in (EXTENDED, EXTENDED_F32):
        fused = FaultSimulator(
            mixed_campaign["net"], config, fused=True, time_block=time_block
        )
        result = fused.detect(assembled, faults)
        _assert_detect_fields_equal(result, reference)


def test_synapse_splice_group_routing(mixed_campaign):
    """The fused segmented engine must route dense-layer synapse faults
    (persistent and windowed) through the column-splice kind; conv-layer
    synapse faults keep the K-batched weight-stack kind."""
    from repro.faults.segmented import SegmentedDetectionCampaign

    fused = FaultSimulator(mixed_campaign["net"], EXTENDED, fused=True)
    campaign = SegmentedDetectionCampaign(
        fused, mixed_campaign["stimulus"], mixed_campaign["faults"]
    )
    kinds_by_module = {}
    for group in campaign.groups:
        kinds_by_module.setdefault(group.module_index, set()).add(group.kind)
    dense_synapse_windows = set()
    for fault in mixed_campaign["faults"]:
        if isinstance(fault, SynapseFault):
            module = mixed_campaign["net"].modules[fault.module_index]
            if type(module).__name__ == "DenseLIF":
                dense_synapse_windows.add(fault.window)
            else:
                assert "synapse_splice" not in kinds_by_module[fault.module_index]
            assert "synapse_splice" in kinds_by_module.get(fault.module_index, set()) \
                or type(module).__name__ != "DenseLIF"
    # Both persistent and windowed dense synapse faults took the splice path.
    assert None in dense_synapse_windows
    assert any(w is not None for w in dense_synapse_windows)
    # The legacy engine never builds splice groups, so the differential
    # baseline genuinely exercises the other path.
    legacy = FaultSimulator(mixed_campaign["net"], EXTENDED, fused=False)
    legacy_campaign = SegmentedDetectionCampaign(
        legacy, mixed_campaign["stimulus"], mixed_campaign["faults"]
    )
    assert all(g.kind != "synapse_splice" for g in legacy_campaign.groups)


def test_synapse_splice_matches_kbatched(mixed_campaign, legacy_reference):
    """Splice off vs on under the fused engine — same bits, both engines."""
    splice_off = FaultSimulator(
        mixed_campaign["net"], EXTENDED, fused=True, synapse_splice=False
    )
    for simulator in (
        splice_off,
        FaultSimulator(mixed_campaign["net"], EXTENDED, fused=True),
    ):
        result = simulator.detect_segmented(
            mixed_campaign["stimulus"], mixed_campaign["faults"],
            drop_detected=False,
        )
        _assert_detect_fields_equal(result, legacy_reference)


def test_float32_fallback_preserves_exactness(mixed_campaign):
    """Force the spike-margin guard to trip on every group (impossible
    margin): every group must transparently rerun in float64 and the
    result must not change."""
    import repro.faults.simulator as simulator_mod

    legacy = FaultSimulator(mixed_campaign["net"], EXTENDED, fused=False)
    reference = legacy.detect(
        mixed_campaign["stimulus"].assembled(), mixed_campaign["faults"]
    )
    fused = FaultSimulator(mixed_campaign["net"], EXTENDED_F32, fused=True)
    original = simulator_mod.FLOAT32_GUARD_MARGIN
    simulator_mod.FLOAT32_GUARD_MARGIN = 1e9
    try:
        result = fused.detect(
            mixed_campaign["stimulus"].assembled(), mixed_campaign["faults"]
        )
    finally:
        simulator_mod.FLOAT32_GUARD_MARGIN = original
    _assert_detect_fields_equal(result, reference)
    assert result.f32_fallbacks > 0


# ----------------------------------------------------------------------
# Hypothesis: random extended catalogs, chunk layouts, engines
# ----------------------------------------------------------------------
_NETS = {
    "dense": lambda: build_network(
        NetworkSpec(
            name="h-dense",
            input_shape=(8,),
            layers=(DenseSpec(out_features=6), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.9, refractory_steps=1),
        ),
        np.random.default_rng(11),
    ),
    "recurrent": lambda: build_network(
        NetworkSpec(
            name="h-rec",
            input_shape=(8,),
            layers=(RecurrentSpec(out_features=5), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.85, refractory_steps=1),
        ),
        np.random.default_rng(13),
    ),
    "conv": lambda: build_network(
        NetworkSpec(
            name="h-conv",
            input_shape=(1, 4, 4),
            layers=(
                ConvSpec(out_channels=2, kernel=2),
                FlattenSpec(),
                DenseSpec(out_features=3),
            ),
            lif=LIFParameters(leak=0.9, refractory_steps=1),
        ),
        np.random.default_rng(17),
    ),
}
_CACHE = {}


def _cached(kind):
    if kind not in _CACHE:
        net = _NETS[kind]()
        catalog = build_catalog(net, EXTENDED)
        _CACHE[kind] = (net, catalog)
    return _CACHE[kind]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(["dense", "recurrent"]),
    chunk_durations=st.lists(st.integers(1, 5), min_size=1, max_size=4),
    seed=st.integers(0, 2**16),
    n_faults=st.integers(1, 20),
    drop=st.booleans(),
    div=st.booleans(),
    comp=st.booleans(),
    workers=st.sampled_from([1, 4]),
)
def test_property_extended_engines_agree(
    kind, chunk_durations, seed, n_faults, drop, div, comp, workers
):
    net, catalog = _cached(kind)
    rng = np.random.default_rng(seed)
    all_faults = catalog.faults
    picks = rng.choice(
        len(all_faults), size=min(n_faults, len(all_faults)), replace=False
    )
    faults = [all_faults[i] for i in sorted(picks)]
    stimulus = _stimulus(net.input_shape, chunk_durations, rng, density=0.5)
    simulator = FaultSimulator(net, EXTENDED)
    reference = simulator.detect(stimulus.assembled(), faults)
    serial = FaultSimulator(
        net, EXTENDED, neuron_batch=1, synapse_batch=1, neuron_splice=False
    )
    assert np.array_equal(
        serial.detect(stimulus.assembled(), faults).detected, reference.detected
    )
    if workers > 1 and not fork_available():
        workers = 1
    result = parallel_detect_segmented(
        simulator, stimulus, faults,
        workers=workers, drop_detected=drop,
        divergence_exit=div, compact_batches=comp,
    )
    assert np.array_equal(result.detected, reference.detected)
    if not drop:
        assert np.array_equal(result.output_l1, reference.output_l1)
        assert np.array_equal(result.class_count_diff, reference.class_count_diff)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(sorted(_NETS)),
    seed=st.integers(0, 2**16),
    n_faults=st.integers(1, 16),
    duration=st.integers(2, 14),
    time_block=st.sampled_from([None, 1, 3, 5]),
    f32=st.booleans(),
)
def test_property_fused_matches_legacy(
    kind, seed, n_faults, duration, time_block, f32
):
    """Fused one-BLAS-call batches equal the per-step engine bit-for-bit
    on random dense/conv/recurrent catalogs, any time-block size, with
    and without the gated float32 mode."""
    net, catalog = _cached(kind)
    rng = np.random.default_rng(seed)
    all_faults = catalog.faults
    picks = rng.choice(
        len(all_faults), size=min(n_faults, len(all_faults)), replace=False
    )
    faults = [all_faults[i] for i in sorted(picks)]
    stimulus = (rng.random((duration, 1) + net.input_shape) < 0.5).astype(float)
    legacy = FaultSimulator(net, EXTENDED, fused=False)
    reference = legacy.detect(stimulus, faults)
    config = EXTENDED_F32 if f32 else EXTENDED
    fused = FaultSimulator(net, config, fused=True, time_block=time_block)
    result = fused.detect(stimulus, faults)
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)
