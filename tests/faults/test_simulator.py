"""Tests for fault-simulation campaigns: detection, classification,
coverage breakdown, and the layer-skip optimisation's correctness."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults.catalog import build_catalog
from repro.faults.injector import inject
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import DenseSpec, NetworkSpec, build_network
from repro.snn.neuron import LIFParameters


def _net(seed=0, sizes=(8, 6, 4)):
    layers = tuple(DenseSpec(out_features=s) for s in sizes)
    spec = NetworkSpec(
        name="sim",
        input_shape=(10,),
        layers=layers,
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


def _stimulus(seed=1, steps=12, density=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, 1, 10)) < density).astype(float)


def _dataset(seed=2, steps=12, samples=6):
    rng = np.random.default_rng(seed)
    inputs = (rng.random((steps, samples, 10)) < 0.5).astype(float)
    labels = rng.integers(0, 4, size=samples)
    return inputs, labels


class TestDetect:
    def test_saturated_output_neuron_always_detected(self):
        net = _net()
        sim = FaultSimulator(net)
        fault = NeuronFault(2, 0, NeuronFaultKind.SATURATED)
        result = sim.detect(_stimulus(), [fault])
        assert result.detected[0]
        assert result.output_l1[0] > 0

    def test_zero_stimulus_detects_only_saturation(self):
        net = _net()
        sim = FaultSimulator(net)
        faults = [
            NeuronFault(0, 0, NeuronFaultKind.DEAD),
            NeuronFault(2, 1, NeuronFaultKind.SATURATED),
            SynapseFault(0, 0, 0, SynapseFaultKind.SATURATED_POSITIVE),
        ]
        zeros = np.zeros((10, 1, 10))
        result = sim.detect(zeros, faults)
        # With no input spikes, dead neurons and synapse faults are silent;
        # a saturated neuron fires regardless and must be detected.
        assert not result.detected[0]
        assert result.detected[1]
        assert not result.detected[2]

    def test_layer_skip_matches_full_simulation(self):
        net = _net()
        sim = FaultSimulator(net)
        stim = _stimulus()
        catalog = build_catalog(net)
        subset = catalog.faults[:: max(1, len(catalog.faults) // 50)]
        result = sim.detect(stim, subset)
        golden = net.run(stim)[:, 0, :]
        for fault, fast_detected in zip(subset, result.detected):
            with inject(net, fault, sim.config):
                full = net.run(stim)[:, 0, :]  # full re-simulation, no skip
            assert (np.abs(full - golden).sum() > 0) == fast_detected, fault.describe()

    def test_class_count_diff_shape(self):
        net = _net()
        sim = FaultSimulator(net)
        result = sim.detect(_stimulus(), [NeuronFault(2, 0, NeuronFaultKind.SATURATED)])
        assert result.class_count_diff.shape == (1, 4)

    def test_network_restored_after_campaign(self):
        net = _net()
        before = {k: v.copy() for k, v in net.state_dict().items()}
        sim = FaultSimulator(net)
        catalog = build_catalog(net)
        sim.detect(_stimulus(), catalog.faults[:40])
        after = net.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])
        for module in net.spiking_modules:
            assert not module.mode.any()

    def test_rejects_batched_stimulus(self):
        sim = FaultSimulator(_net())
        with pytest.raises(FaultModelError):
            sim.detect(np.zeros((5, 2, 10)), [])

    def test_detection_rate_empty(self):
        sim = FaultSimulator(_net())
        result = sim.detect(_stimulus(), [])
        assert result.detection_rate() == 0.0

    def test_progress_callback_invoked(self):
        net = _net()
        sim = FaultSimulator(net)
        calls = []
        faults = [NeuronFault(0, 0, NeuronFaultKind.DEAD)] * 1000
        sim.detect(_stimulus(), faults, progress=lambda done, total: calls.append(done))
        assert len(calls) == 1
        assert calls[0] >= 1000

    def test_progress_fires_on_completion_of_short_campaign(self):
        """Campaigns shorter than the reporting interval still get exactly
        one final progress(n, n) call."""
        net = _net()
        sim = FaultSimulator(net)
        calls = []
        faults = [NeuronFault(0, 0, NeuronFaultKind.DEAD)] * 5
        sim.detect(
            _stimulus(), faults, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(5, 5)]

    def test_progress_reports_boundaries_then_completion(self):
        net = _net()
        sim = FaultSimulator(net)
        calls = []
        faults = [NeuronFault(0, 0, NeuronFaultKind.DEAD)] * 1500
        sim.detect(
            _stimulus(), faults, progress=lambda done, total: calls.append((done, total))
        )
        # One interval-boundary report, one completion report, no duplicate
        # when the boundary and the end coincide.
        assert calls[-1] == (1500, 1500)
        assert len(calls) == 2
        assert calls[0][0] >= 1000

    def test_progress_completion_in_classify(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        calls = []
        faults = [
            NeuronFault(0, 0, NeuronFaultKind.DEAD),
            SynapseFault(0, 0, 0, SynapseFaultKind.DEAD),
        ]
        sim.classify(
            inputs, labels, faults,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(2, 2)]


class TestClassify:
    def test_output_dead_neuron_usually_critical(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        # Killing an output neuron that wins for some sample flips top-1.
        golden_preds = net.predict(inputs)
        winner = int(np.bincount(golden_preds, minlength=4).argmax())
        fault = NeuronFault(2, winner, NeuronFaultKind.DEAD)
        result = sim.classify(inputs, labels, [fault])
        assert result.critical[0]

    def test_accuracy_drop_sign(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        golden_preds = net.predict(inputs)
        winner = int(np.bincount(golden_preds, minlength=4).argmax())
        result = sim.classify(inputs, labels, [NeuronFault(2, winner, NeuronFaultKind.DEAD)])
        # Drop can be negative if the fault "fixes" predictions, but for a
        # dead winning neuron with these labels it should not be hugely so.
        assert -1.0 <= result.accuracy_drop[0] <= 1.0

    def test_benign_for_identity_perturbation(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        # A dead fault on an already-zero weight changes nothing.
        net.modules[0].weight.data.reshape(-1)[0] = 0.0
        fault = SynapseFault(0, 0, 0, SynapseFaultKind.DEAD)
        result = sim.classify(inputs, labels, [fault])
        assert not result.critical[0]

    def test_counts(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        catalog = build_catalog(net, FaultModelConfig(synapse_kinds=()))
        result = sim.classify(inputs, labels, catalog.faults)
        assert result.critical_count + result.benign_count == len(catalog.faults)

    def test_rejects_inconsistent_shapes(self):
        sim = FaultSimulator(_net())
        with pytest.raises(FaultModelError):
            sim.classify(np.zeros((5, 3, 10)), np.zeros(4, dtype=int), [])

    def test_chunked_classify_labels_match_unchunked(self):
        """Regression for the classify() chunk variable shadowing: with
        chunk_size set, the sample-chunk bounds and the fault groups are
        distinct loops, and criticality labels must equal the unchunked
        campaign for a mixed neuron+synapse fault list."""
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        catalog = build_catalog(net, rng=np.random.default_rng(5))
        subset = catalog.faults[:: max(1, len(catalog.faults) // 40)]
        full = sim.classify(inputs, labels, subset)
        for chunk_size in (1, 2, 4):
            chunked = sim.classify(inputs, labels, subset, chunk_size=chunk_size)
            assert np.array_equal(chunked.critical, full.critical), chunk_size
            # Exact drops wherever the chunked campaign did not early-exit.
            exact = ~np.isnan(chunked.accuracy_drop)
            assert np.array_equal(
                chunked.accuracy_drop[exact], full.accuracy_drop[exact]
            )
            # Early-exit markers only appear on critical faults.
            assert np.all(chunked.critical[~exact])

    def test_classification_layer_skip_consistency(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        catalog = build_catalog(net)
        subset = catalog.faults[:: max(1, len(catalog.faults) // 30)]
        result = sim.classify(inputs, labels, subset)
        golden_preds = net.predict(inputs)
        for fault, is_critical in zip(subset, result.critical):
            with inject(net, fault, sim.config):
                preds = net.predict(inputs)
            assert bool(np.any(preds != golden_preds)) == is_critical, fault.describe()


class TestCoverage:
    def _results(self):
        net = _net()
        sim = FaultSimulator(net)
        inputs, labels = _dataset()
        catalog = build_catalog(
            net, FaultModelConfig(synapse_sample_fraction=0.2), rng=np.random.default_rng(3)
        )
        detection = sim.detect(_stimulus(), catalog.faults)
        classification = sim.classify(inputs, labels, catalog.faults)
        return detection, classification

    def test_breakdown_fields_in_range(self):
        detection, classification = self._results()
        coverage = FaultSimulator.coverage(detection, classification)
        for _, value in coverage.rows():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= coverage.fc_overall <= 1.0

    def test_counts_sum_to_total(self):
        detection, classification = self._results()
        coverage = FaultSimulator.coverage(detection, classification)
        assert sum(coverage.counts.values()) == len(detection.faults)

    def test_mismatched_lists_rejected(self):
        detection, classification = self._results()
        classification.faults = classification.faults[:-1]
        with pytest.raises(FaultModelError):
            FaultSimulator.coverage(detection, classification)

    def test_empty_class_reports_full_coverage(self):
        # No benign faults at all -> benign FC defined as 1.0 (vacuous).
        net = _net()
        sim = FaultSimulator(net)
        fault = NeuronFault(2, 0, NeuronFaultKind.SATURATED)
        detection = sim.detect(_stimulus(), [fault])
        inputs, labels = _dataset()
        classification = sim.classify(inputs, labels, [fault])
        coverage = FaultSimulator.coverage(detection, classification)
        assert coverage.fc_overall == 1.0
