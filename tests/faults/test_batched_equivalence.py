"""Batched fault simulation must agree exactly with sequential per-fault
injection, on every layer type.

Neuron faults batch along the batch axis (parameter arrays per row),
synapse faults batch by lifting weight tensors to a ``(K, ...)`` leading
axis, and eligible neuron faults are spliced into the cached golden layer
output without re-running the faulty module.  All three fast paths are
compared here against the reversible one-at-a-time ``inject`` reference
with exact equality."""

import numpy as np
import pytest

from repro.faults.catalog import build_catalog
from repro.faults.injector import inject
from repro.faults.model import FaultModelConfig, NeuronFaultKind
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _conv_net():
    spec = NetworkSpec(
        name="conv",
        input_shape=(2, 8, 8),
        layers=(
            ConvSpec(out_channels=4, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=10),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _rec_net():
    spec = NetworkSpec(
        name="rec",
        input_shape=(10,),
        layers=(RecurrentSpec(out_features=8), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(1))


@pytest.mark.parametrize("net_factory,input_shape", [(_conv_net, (2, 8, 8)), (_rec_net, (10,))])
@pytest.mark.parametrize("neuron_batch", [1, 4, 16])
def test_detect_matches_sequential(net_factory, input_shape, neuron_batch):
    net = net_factory()
    config = FaultModelConfig(synapse_kinds=())
    catalog = build_catalog(net, config)
    faults = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // 40)]
    stim = (np.random.default_rng(2).random((10, 1) + input_shape) > 0.6).astype(float)

    simulator = FaultSimulator(net, config, neuron_batch=neuron_batch)
    result = simulator.detect(stim, faults)

    golden = net.run(stim)[:, 0, :]
    for fault, detected, l1 in zip(faults, result.detected, result.output_l1):
        with inject(net, fault, config):
            out = net.run(stim)[:, 0, :]
        expected = np.abs(out - golden).sum()
        assert expected == pytest.approx(l1), fault.describe()
        assert (expected > 0) == detected


@pytest.mark.parametrize("neuron_batch", [1, 8])
def test_classify_matches_sequential(neuron_batch):
    net = _conv_net()
    config = FaultModelConfig(synapse_kinds=())
    catalog = build_catalog(net, config)
    faults = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // 30)]
    rng = np.random.default_rng(3)
    inputs = (rng.random((10, 6, 2, 8, 8)) > 0.6).astype(float)
    labels = rng.integers(0, 4, size=6)

    simulator = FaultSimulator(net, config, neuron_batch=neuron_batch)
    result = simulator.classify(inputs, labels, faults)

    golden_preds = net.predict(inputs)
    for fault, critical, drop in zip(faults, result.critical, result.accuracy_drop):
        with inject(net, fault, config):
            preds = net.predict(inputs)
        assert bool(np.any(preds != golden_preds)) == critical, fault.describe()
        expected_drop = result.nominal_accuracy - float((preds == labels).mean())
        assert drop == pytest.approx(expected_drop), fault.describe()


def _synapse_faults(net, per_module=12):
    catalog = build_catalog(net, FaultModelConfig(neuron_kinds=()))
    return catalog.synapse_faults[
        :: max(1, len(catalog.synapse_faults) // (per_module * len(net.modules)))
    ]


@pytest.mark.parametrize(
    "net_factory,input_shape", [(_conv_net, (2, 8, 8)), (_rec_net, (10,))]
)
@pytest.mark.parametrize("synapse_batch", [4, 16])
def test_synapse_detect_matches_sequential(net_factory, input_shape, synapse_batch):
    """K-batched synapse campaigns equal the synapse_batch=1 inject path,
    field by field, with no tolerance."""
    net = net_factory()
    config = FaultModelConfig(neuron_kinds=())
    faults = _synapse_faults(net)
    assert faults, "catalog produced no synapse faults"
    stim = (np.random.default_rng(5).random((10, 1) + input_shape) > 0.6).astype(float)

    sequential = FaultSimulator(net, config, synapse_batch=1).detect(stim, faults)
    batched = FaultSimulator(net, config, synapse_batch=synapse_batch).detect(
        stim, faults
    )
    assert np.array_equal(sequential.detected, batched.detected)
    assert np.array_equal(sequential.output_l1, batched.output_l1)
    assert np.array_equal(sequential.class_count_diff, batched.class_count_diff)

    golden = net.run(stim)[:, 0, :]
    for fault, detected, l1 in zip(faults, batched.detected, batched.output_l1):
        with inject(net, fault, config):
            out = net.run(stim)[:, 0, :]
        expected = np.abs(out - golden).sum()
        assert expected == l1, fault.describe()
        assert (expected > 0) == detected, fault.describe()


@pytest.mark.parametrize("chunk_size", [None, 2])
def test_synapse_classify_matches_sequential(chunk_size):
    """Batched synapse classification reproduces the sequential labels and
    the chunk_size early-exit (NaN accuracy_drop) markers exactly."""
    net = _conv_net()
    config = FaultModelConfig(neuron_kinds=())
    faults = _synapse_faults(net)
    rng = np.random.default_rng(6)
    inputs = (rng.random((10, 6, 2, 8, 8)) > 0.6).astype(float)
    labels = rng.integers(0, 4, size=6)

    sequential = FaultSimulator(net, config, synapse_batch=1).classify(
        inputs, labels, faults, chunk_size=chunk_size
    )
    batched = FaultSimulator(net, config, synapse_batch=8).classify(
        inputs, labels, faults, chunk_size=chunk_size
    )
    assert np.array_equal(sequential.critical, batched.critical)
    assert np.array_equal(
        sequential.accuracy_drop, batched.accuracy_drop, equal_nan=True
    )
    assert sequential.nominal_accuracy == batched.nominal_accuracy
    if chunk_size is not None:
        # NaN only for faults that flipped before the final sample chunk,
        # and every early-exited fault is necessarily critical.
        nan_mask = np.isnan(batched.accuracy_drop)
        assert np.all(batched.critical[nan_mask])
    else:
        assert not np.isnan(batched.accuracy_drop).any()


@pytest.mark.parametrize(
    "net_factory,input_shape", [(_conv_net, (2, 8, 8)), (_rec_net, (10,))]
)
def test_neuron_splice_matches_full_rerun(net_factory, input_shape):
    """The splice path (simulate only the faulty neuron, patch the cached
    golden layer output) equals the full faulty-module re-run exactly."""
    net = net_factory()
    config = FaultModelConfig(synapse_kinds=())
    catalog = build_catalog(net, config)
    faults = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // 50)]
    stim = (np.random.default_rng(7).random((10, 1) + input_shape) > 0.6).astype(float)

    full = FaultSimulator(net, config, neuron_splice=False).detect(stim, faults)
    spliced = FaultSimulator(net, config, neuron_splice=True).detect(stim, faults)
    assert np.array_equal(full.detected, spliced.detected)
    assert np.array_equal(full.output_l1, spliced.output_l1)
    assert np.array_equal(full.class_count_diff, spliced.class_count_diff)

    rng = np.random.default_rng(8)
    inputs = (rng.random((10, 4) + input_shape) > 0.6).astype(float)
    labels = rng.integers(0, 4, size=4)
    full_cls = FaultSimulator(net, config, neuron_splice=False).classify(
        inputs, labels, faults
    )
    spliced_cls = FaultSimulator(net, config, neuron_splice=True).classify(
        inputs, labels, faults
    )
    assert np.array_equal(full_cls.critical, spliced_cls.critical)
    assert np.array_equal(full_cls.accuracy_drop, spliced_cls.accuracy_drop)


def test_weights_restored_after_batched_synapse_campaign():
    net = _conv_net()
    config = FaultModelConfig(neuron_kinds=())
    before = {k: v.copy() for k, v in net.state_dict().items()}
    FaultSimulator(net, config, synapse_batch=8).detect(
        (np.random.default_rng(9).random((8, 1, 2, 8, 8)) > 0.6).astype(float),
        _synapse_faults(net),
    )
    after = net.state_dict()
    for key in before:
        assert np.array_equal(before[key], after[key])


def test_timing_faults_batched_exactly():
    """Timing-variation faults perturb per-neuron parameter arrays; the
    batched expansion must perturb exactly one row per fault."""
    net = _rec_net()
    config = FaultModelConfig(
        neuron_kinds=(
            NeuronFaultKind.TIMING_THRESHOLD,
            NeuronFaultKind.TIMING_LEAK,
            NeuronFaultKind.TIMING_REFRACTORY,
        ),
        synapse_kinds=(),
    )
    catalog = build_catalog(net, config)
    stim = (np.random.default_rng(4).random((12, 1, 10)) > 0.4).astype(float)
    simulator = FaultSimulator(net, config, neuron_batch=8)
    result = simulator.detect(stim, catalog.neuron_faults)
    golden = net.run(stim)[:, 0, :]
    for fault, detected in zip(catalog.neuron_faults, result.detected):
        with inject(net, fault, config):
            out = net.run(stim)[:, 0, :]
        assert (np.abs(out - golden).sum() > 0) == detected, fault.describe()
    # Parameter arrays fully restored after the batched campaign.
    for module in net.spiking_modules:
        assert np.allclose(module.threshold, module.params.threshold)
        assert np.allclose(module.leak, module.params.leak)
        assert np.all(module.refractory_steps == module.params.refractory_steps)
