"""Batched neuron-fault simulation must agree exactly with sequential
per-fault injection, on every layer type."""

import numpy as np
import pytest

from repro.faults.catalog import build_catalog
from repro.faults.injector import inject
from repro.faults.model import FaultModelConfig, NeuronFaultKind
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _conv_net():
    spec = NetworkSpec(
        name="conv",
        input_shape=(2, 8, 8),
        layers=(
            ConvSpec(out_channels=4, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=10),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _rec_net():
    spec = NetworkSpec(
        name="rec",
        input_shape=(10,),
        layers=(RecurrentSpec(out_features=8), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(1))


@pytest.mark.parametrize("net_factory,input_shape", [(_conv_net, (2, 8, 8)), (_rec_net, (10,))])
@pytest.mark.parametrize("neuron_batch", [1, 4, 16])
def test_detect_matches_sequential(net_factory, input_shape, neuron_batch):
    net = net_factory()
    config = FaultModelConfig(synapse_kinds=())
    catalog = build_catalog(net, config)
    faults = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // 40)]
    stim = (np.random.default_rng(2).random((10, 1) + input_shape) > 0.6).astype(float)

    simulator = FaultSimulator(net, config, neuron_batch=neuron_batch)
    result = simulator.detect(stim, faults)

    golden = net.run(stim)[:, 0, :]
    for fault, detected, l1 in zip(faults, result.detected, result.output_l1):
        with inject(net, fault, config):
            out = net.run(stim)[:, 0, :]
        expected = np.abs(out - golden).sum()
        assert expected == pytest.approx(l1), fault.describe()
        assert (expected > 0) == detected


@pytest.mark.parametrize("neuron_batch", [1, 8])
def test_classify_matches_sequential(neuron_batch):
    net = _conv_net()
    config = FaultModelConfig(synapse_kinds=())
    catalog = build_catalog(net, config)
    faults = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // 30)]
    rng = np.random.default_rng(3)
    inputs = (rng.random((10, 6, 2, 8, 8)) > 0.6).astype(float)
    labels = rng.integers(0, 4, size=6)

    simulator = FaultSimulator(net, config, neuron_batch=neuron_batch)
    result = simulator.classify(inputs, labels, faults)

    golden_preds = net.predict(inputs)
    for fault, critical, drop in zip(faults, result.critical, result.accuracy_drop):
        with inject(net, fault, config):
            preds = net.predict(inputs)
        assert bool(np.any(preds != golden_preds)) == critical, fault.describe()
        expected_drop = result.nominal_accuracy - float((preds == labels).mean())
        assert drop == pytest.approx(expected_drop), fault.describe()


def test_timing_faults_batched_exactly():
    """Timing-variation faults perturb per-neuron parameter arrays; the
    batched expansion must perturb exactly one row per fault."""
    net = _rec_net()
    config = FaultModelConfig(
        neuron_kinds=(
            NeuronFaultKind.TIMING_THRESHOLD,
            NeuronFaultKind.TIMING_LEAK,
            NeuronFaultKind.TIMING_REFRACTORY,
        ),
        synapse_kinds=(),
    )
    catalog = build_catalog(net, config)
    stim = (np.random.default_rng(4).random((12, 1, 10)) > 0.4).astype(float)
    simulator = FaultSimulator(net, config, neuron_batch=8)
    result = simulator.detect(stim, catalog.neuron_faults)
    golden = net.run(stim)[:, 0, :]
    for fault, detected in zip(catalog.neuron_faults, result.detected):
        with inject(net, fault, config):
            out = net.run(stim)[:, 0, :]
        assert (np.abs(out - golden).sum() > 0) == detected, fault.describe()
    # Parameter arrays fully restored after the batched campaign.
    for module in net.spiking_modules:
        assert np.allclose(module.threshold, module.params.threshold)
        assert np.allclose(module.leak, module.params.leak)
        assert np.all(module.refractory_steps == module.params.refractory_steps)
