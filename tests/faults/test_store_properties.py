"""Property tests for the coverage store's trust base.

The differential re-verification guarantee rests on four properties the
hypothesis suites below pin directly, independent of any campaign:

- **fingerprint injectivity** — perturbing the stimulus (any bit of any
  chunk), the campaign options, the fault-model options, or the network
  weights changes the relevant fingerprint, so stale records can never be
  looked up under the new identity;
- **byte-determinism** — the same record content serializes to the same
  bytes, so first-writer-wins dedup across engines and workers is sound;
- **typed corruption errors** — a record that exists but cannot be
  trusted (torn, bit-flipped, mis-keyed) raises ``StoreError``, never a
  silent hit or a silent miss;
- **GC pinning** — eviction never removes a record a live test set still
  references.
"""

import dataclasses
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import network_digest
from repro.core.testset import TestStimulus
from repro.errors import StoreError
from repro.faults.model import FaultModelConfig
from repro.faults.simulator import FaultSimulator
from repro.faults.store import (
    CoverageStore,
    base_fingerprint,
    chain_from_array,
    chain_to_array,
    options_token,
    stimulus_chain,
)
from repro.snn.builder import DenseSpec, NetworkSpec, build_network
from repro.snn.neuron import LIFParameters

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _stimulus_from_seed(durations, seed, density=0.5):
    rng = np.random.default_rng(seed)
    chunks = [
        (rng.random((d, 1, 3)) < density).astype(float) for d in durations
    ]
    return TestStimulus(chunks=chunks, input_shape=(3,))


# ----------------------------------------------------------------------
# Fingerprint injectivity
# ----------------------------------------------------------------------
@SETTINGS
@given(
    durations=st.lists(st.integers(1, 3), min_size=1, max_size=4),
    seed=st.integers(0, 2**32 - 1),
    data=st.data(),
)
def test_chain_diverges_exactly_at_the_flipped_segment(durations, seed, data):
    stimulus = _stimulus_from_seed(durations, seed)
    chunk_index = data.draw(st.integers(0, len(durations) - 1))
    chunk = stimulus.chunks[chunk_index]
    flat = chunk.reshape(-1).copy()
    bit = data.draw(st.integers(0, flat.size - 1))
    flat[bit] = 1.0 - flat[bit]
    edited_chunks = list(stimulus.chunks)
    edited_chunks[chunk_index] = flat.reshape(chunk.shape)
    edited = TestStimulus(chunks=edited_chunks, input_shape=(3,))
    before, after = stimulus_chain(stimulus), stimulus_chain(edited)
    assert before[:chunk_index] == after[:chunk_index]
    assert all(
        before[i] != after[i] for i in range(chunk_index, len(durations))
    ), "a flipped bit must invalidate its segment and every later prefix"


@SETTINGS
@given(
    durations=st.lists(st.integers(1, 3), min_size=1, max_size=4),
    seed=st.integers(0, 2**32 - 1),
)
def test_appending_a_chunk_invalidates_the_previously_final_segment(durations, seed):
    stimulus = _stimulus_from_seed(durations, seed)
    extended = TestStimulus(
        chunks=list(stimulus.chunks) + [_stimulus_from_seed([2], seed + 1).chunks[0]],
        input_shape=(3,),
    )
    before, after = stimulus_chain(stimulus), stimulus_chain(extended)
    n = len(durations)
    # The old final segment gains a sleep gap, so its digest must change —
    # resuming carried state across a bare-vs-sleeping segment is unsound.
    assert before[: n - 1] == after[: n - 1]
    assert before[n - 1] != after[n - 1]


@SETTINGS
@given(
    digests=st.lists(
        st.binary(min_size=32, max_size=32).map(bytes.hex), max_size=6
    )
)
def test_chain_array_round_trip(digests):
    assert chain_from_array(chain_to_array(digests)) == digests


def test_options_token_injective_over_the_full_grid():
    net = build_network(
        NetworkSpec(
            name="opt", input_shape=(3,), layers=(DenseSpec(out_features=2),),
            lif=LIFParameters(),
        ),
        np.random.default_rng(0),
    )
    tokens = set()
    combos = 0
    for dtype in ("float64", "float32"):
        for fused in (True, False):
            if dtype == "float32" and not fused:
                continue  # rejected by the simulator itself
            simulator = FaultSimulator(
                net, FaultModelConfig(dtype=dtype), fused=fused
            )
            for drop in (False, True):
                for div in (False, True):
                    for comp in (False, True):
                        tokens.add(options_token(simulator, drop, div, comp))
                        combos += 1
    assert len(tokens) == combos


@SETTINGS
@given(st.integers(0, 2**32 - 1))
def test_base_fingerprint_tracks_weights_and_config(seed):
    rng = np.random.default_rng(seed)
    spec = NetworkSpec(
        name="fp", input_shape=(4,),
        layers=(DenseSpec(out_features=3), DenseSpec(out_features=2)),
        lif=LIFParameters(leak=0.9),
    )
    net = build_network(spec, rng)
    config = FaultModelConfig()
    simulator = FaultSimulator(net, config)
    options = options_token(simulator, True, True, True)
    fp = base_fingerprint(network_digest(net), config, options)
    # One weight element perturbed in the smallest representable way.
    module = net.modules[rng.integers(len(net.modules))]
    flat = module.weight.data.reshape(-1)
    index = rng.integers(flat.size)
    flat[index] = np.nextafter(flat[index], np.inf)
    assert base_fingerprint(network_digest(net), config, options) != fp
    # A fault-model option change separates fingerprints too.
    other = dataclasses.replace(
        config, saturation_multiplier=config.saturation_multiplier * 2
    )
    assert base_fingerprint(network_digest(net), other, options) != base_fingerprint(
        network_digest(net), config, options
    )


# ----------------------------------------------------------------------
# Round-trip byte-determinism
# ----------------------------------------------------------------------
ARRAY_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from(["f8", "f4", "i8", "u1", "?"]),
        st.lists(st.integers(0, 4), min_size=1, max_size=3),
        st.integers(0, 2**32 - 1),
    ),
    min_size=1,
    max_size=4,
)


def _arrays_from_spec(spec):
    arrays = {}
    for j, (dtype, shape, seed) in enumerate(spec):
        rng = np.random.default_rng(seed)
        data = rng.random(tuple(shape))
        arrays[f"a{j}"] = (data > 0.5) if dtype == "?" else (data * 100).astype(dtype)
    return arrays


@SETTINGS
@given(spec=ARRAY_STRATEGY, key_seed=st.integers(0, 2**32 - 1))
def test_put_get_round_trip_and_byte_determinism(spec, key_seed):
    arrays = _arrays_from_spec(spec)
    key = f"{key_seed:064x}"
    meta = {"kind": "prop", "n": len(arrays)}
    with tempfile.TemporaryDirectory() as a, tempfile.TemporaryDirectory() as b:
        first, second = CoverageStore(a), CoverageStore(b)
        assert first.put(key, arrays, meta)
        assert second.put(key, arrays, meta)
        loaded, loaded_meta = first.get(key)
        assert set(loaded) == set(arrays)
        for name in arrays:
            assert loaded[name].dtype == arrays[name].dtype
            assert np.array_equal(loaded[name], arrays[name])
        assert loaded_meta["kind"] == "prop" and loaded_meta["key"] == key
        bytes_a = first._path(key).read_bytes()
        bytes_b = second._path(key).read_bytes()
        assert bytes_a == bytes_b, "same record must serialize byte-identically"
        # Re-putting an existing key is a no-op for every writer.
        assert not first.put(key, arrays, meta)


# ----------------------------------------------------------------------
# Corruption is typed, never silent
# ----------------------------------------------------------------------
@SETTINGS
@given(
    spec=ARRAY_STRATEGY,
    flip=st.integers(0, 2**16),
    truncate=st.booleans(),
)
def test_corrupt_and_torn_records_raise_store_error(spec, flip, truncate):
    arrays = _arrays_from_spec(spec)
    key = "c" * 64
    with tempfile.TemporaryDirectory() as root:
        store = CoverageStore(root)
        store.put(key, arrays, {"kind": "prop"})
        path = store._path(key)
        payload = path.read_bytes()
        if truncate:
            damaged = payload[: max(1, len(payload) // 2)]  # torn write
        else:
            position = flip % len(payload)
            damaged = (
                payload[:position]
                + bytes([payload[position] ^ 0x40])
                + payload[position + 1 :]
            )
        path.write_bytes(damaged)
        hits_before = store.hits
        with pytest.raises(StoreError):
            store.get(key)
        assert store.hits == hits_before, "corruption must never count as a hit"


def test_record_filed_under_the_wrong_key_raises():
    arrays = {"a": np.arange(3.0)}
    with tempfile.TemporaryDirectory() as root:
        store = CoverageStore(root)
        store.put("a" * 64, arrays, {"kind": "prop"})
        wrong = store._path("b" * 64)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(store._path("a" * 64).read_bytes())
        with pytest.raises(StoreError, match="keyed as"):
            store.get("b" * 64)


def test_missing_record_is_a_miss_not_an_error():
    with tempfile.TemporaryDirectory() as root:
        store = CoverageStore(root)
        assert store.get("f" * 64) is None
        assert store.misses == 1


# ----------------------------------------------------------------------
# GC
# ----------------------------------------------------------------------
@SETTINGS
@given(
    count=st.integers(1, 12),
    pinned_mask=st.integers(0, 2**12 - 1),
)
def test_gc_never_evicts_pinned_records(count, pinned_mask):
    keys = [f"{i:064x}" for i in range(count)]
    pinned = {k for i, k in enumerate(keys) if pinned_mask >> i & 1}
    with tempfile.TemporaryDirectory() as root:
        store = CoverageStore(root)
        for i, key in enumerate(keys):
            store.put(key, {"a": np.full(8, float(i))}, {"kind": "prop"})
        store.gc(max_bytes=0, max_age_s=0.0, pinned=pinned)
        survivors = {path.stem for path in store._records()}
        assert survivors == pinned, (
            "max_bytes=0 + max_age=0 must evict exactly the unpinned records"
        )
        for key in pinned:
            arrays, _ = store.get(key)
            assert np.array_equal(arrays["a"], np.full(8, float(keys.index(key))))


def test_gc_sweeps_torn_temp_files():
    with tempfile.TemporaryDirectory() as root:
        store = CoverageStore(root)
        store.put("a" * 64, {"a": np.zeros(4)}, {"kind": "prop"})
        shard = store._path("a" * 64).parent
        (shard / ("a" * 64 + ".rec.tmp.123")).write_bytes(b"torn")
        assert store.stat()["stale_tmp"] == 1
        swept = store.gc()
        assert swept["removed"] == 1
        assert store.stat() == {
            "root": str(store.root), "records": 1,
            "bytes": store.stat()["bytes"], "stale_tmp": 0,
        }
        assert store.get("a" * 64) is not None
