"""Differential suite: the segment-wise campaign must be *exactly* equal
to the assembled campaign.

The reference is ``FaultSimulator.detect(stimulus.assembled(), faults)``.
Every combination of the segmented engine's optimisations — fault dropping
(``drop_detected``), divergence-bounded propagation (``divergence_exit``),
batch compaction (``compact_batches``) — and worker counts is compared
with ``np.array_equal`` (no tolerances) on the ``detected`` mask.  With
fault dropping off, ``output_l1`` and ``class_count_diff`` must also be
bit-identical, which is what the Fig. 9 exact-metrics path relies on.

The suite also pins the one physically subtle requirement: segments
include the sleep gap, and a saturated neuron fires *during sleep* while
the fault-free network stays silent — an engine that skipped sleep
simulation (or zeroed membrane state between segments) would miss those
detections.
"""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.testset import TestStimulus
from repro.errors import TestGenerationError
from repro.faults.catalog import build_catalog
from repro.faults.model import FaultModelConfig, NeuronFault, NeuronFaultKind
from repro.faults.parallel import (
    fork_available,
    parallel_detect_segmented,
)
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _mixed_net():
    spec = NetworkSpec(
        name="mixed",
        input_shape=(2, 6, 6),
        layers=(
            ConvSpec(out_channels=3, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=8),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _recurrent_net():
    spec = NetworkSpec(
        name="recurrent",
        input_shape=(10,),
        layers=(RecurrentSpec(out_features=7), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.85, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(3))


def _mixed_faults(net, config, per_kind=40):
    catalog = build_catalog(net, config)
    neuron = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // per_kind)]
    synapse = catalog.synapse_faults[:: max(1, len(catalog.synapse_faults) // per_kind)]
    return [
        fault
        for pair in itertools.zip_longest(neuron, synapse)
        for fault in pair
        if fault is not None
    ]


def _stimulus(input_shape, chunk_durations, rng, density=0.4):
    chunks = [
        (rng.random((d, 1) + input_shape) < density).astype(float)
        for d in chunk_durations
    ]
    return TestStimulus(chunks=chunks, input_shape=input_shape)


@pytest.fixture(scope="module")
def mixed_campaign():
    net = _mixed_net()
    config = FaultModelConfig()
    faults = _mixed_faults(net, config)
    stimulus = _stimulus((2, 6, 6), [4, 3, 5], np.random.default_rng(1))
    simulator = FaultSimulator(net, config)
    return {
        "net": net,
        "config": config,
        "simulator": simulator,
        "faults": faults,
        "stimulus": stimulus,
        "reference": simulator.detect(stimulus.assembled(), faults),
    }


@pytest.fixture(scope="module")
def recurrent_campaign():
    net = _recurrent_net()
    config = FaultModelConfig()
    faults = _mixed_faults(net, config, per_kind=30)
    stimulus = _stimulus((10,), [5, 4], np.random.default_rng(2))
    simulator = FaultSimulator(net, config)
    return {
        "simulator": simulator,
        "faults": faults,
        "stimulus": stimulus,
        "reference": simulator.detect(stimulus.assembled(), faults),
    }


# ----------------------------------------------------------------------
# Segment API on TestStimulus
# ----------------------------------------------------------------------
class TestSegmentAPI:
    def test_segments_concatenate_to_assembled(self, mixed_campaign):
        stimulus = mixed_campaign["stimulus"]
        joined = np.concatenate(list(stimulus.iter_segments()), axis=0)
        assert np.array_equal(joined, stimulus.assembled())

    def test_segment_durations_sum_to_total(self, mixed_campaign):
        stimulus = mixed_campaign["stimulus"]
        assert stimulus.num_segments == len(stimulus.chunks)
        assert sum(stimulus.segment_durations) == stimulus.duration_steps
        for idx, duration in enumerate(stimulus.segment_durations):
            assert stimulus.segment(idx).shape[0] == duration

    def test_non_final_segments_end_in_sleep(self, mixed_campaign):
        stimulus = mixed_campaign["stimulus"]
        for idx in range(stimulus.num_segments - 1):
            seg = stimulus.segment(idx)
            assert not seg[seg.shape[0] // 2 :].any()

    def test_segment_index_bounds_checked(self, mixed_campaign):
        stimulus = mixed_campaign["stimulus"]
        with pytest.raises(TestGenerationError):
            stimulus.segment(stimulus.num_segments)
        with pytest.raises(TestGenerationError):
            stimulus.segment(-1)


# ----------------------------------------------------------------------
# Fixed-grid differential: every optimisation combo, serial
# ----------------------------------------------------------------------
OPTION_GRID = list(itertools.product([False, True], repeat=3))


@pytest.mark.parametrize("drop,div,comp", OPTION_GRID)
def test_segmented_detected_matches_assembled(mixed_campaign, drop, div, comp):
    result = mixed_campaign["simulator"].detect_segmented(
        mixed_campaign["stimulus"],
        mixed_campaign["faults"],
        drop_detected=drop,
        divergence_exit=div,
        compact_batches=comp,
    )
    assert np.array_equal(result.detected, mixed_campaign["reference"].detected)


@pytest.mark.parametrize("drop,div,comp", OPTION_GRID)
def test_segmented_recurrent_matches_assembled(recurrent_campaign, drop, div, comp):
    result = recurrent_campaign["simulator"].detect_segmented(
        recurrent_campaign["stimulus"],
        recurrent_campaign["faults"],
        drop_detected=drop,
        divergence_exit=div,
        compact_batches=comp,
    )
    assert np.array_equal(result.detected, recurrent_campaign["reference"].detected)


@pytest.mark.parametrize("div,comp", list(itertools.product([False, True], repeat=2)))
def test_exact_metrics_without_dropping(mixed_campaign, div, comp):
    """With fault dropping off, every fault is simulated over the whole
    test, so the accumulated metrics are bit-identical to the assembled
    campaign (spike trains are 0/1 so the per-segment partial sums are
    exact integers in float64)."""
    result = mixed_campaign["simulator"].detect_segmented(
        mixed_campaign["stimulus"],
        mixed_campaign["faults"],
        drop_detected=False,
        divergence_exit=div,
        compact_batches=comp,
    )
    reference = mixed_campaign["reference"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)


def test_sequential_synapse_path_matches(mixed_campaign):
    """synapse_batch=1 / no splice exercises the one-at-a-time group
    kinds, which share nothing with the K-batched paths."""
    simulator = FaultSimulator(
        mixed_campaign["net"],
        mixed_campaign["config"],
        neuron_batch=1,
        synapse_batch=1,
        neuron_splice=False,
    )
    result = simulator.detect_segmented(
        mixed_campaign["stimulus"], mixed_campaign["faults"], drop_detected=False
    )
    reference = mixed_campaign["reference"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)


# ----------------------------------------------------------------------
# Parallel frontend
# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
@pytest.mark.parametrize("drop", [False, True])
def test_parallel_segmented_matches_assembled(mixed_campaign, drop):
    result = parallel_detect_segmented(
        mixed_campaign["simulator"],
        mixed_campaign["stimulus"],
        mixed_campaign["faults"],
        workers=4,
        drop_detected=drop,
    )
    reference = mixed_campaign["reference"]
    assert np.array_equal(result.detected, reference.detected)
    if not drop:
        assert np.array_equal(result.output_l1, reference.output_l1)
        assert np.array_equal(result.class_count_diff, reference.class_count_diff)


def test_facade_detect_segmented(mixed_campaign):
    from repro.faults.parallel import ParallelFaultSimulator

    facade = ParallelFaultSimulator(
        mixed_campaign["net"], mixed_campaign["config"], workers=1
    )
    result = facade.detect_segmented(
        mixed_campaign["stimulus"], mixed_campaign["faults"]
    )
    assert np.array_equal(result.detected, mixed_campaign["reference"].detected)


# ----------------------------------------------------------------------
# Sleep-window detection: saturated neuron firing during the sleep gap
# ----------------------------------------------------------------------
def test_saturated_neuron_detected_during_sleep_only():
    """A saturated output neuron whose fault-free twin also fires on every
    *driven* step differs from golden only during the sleep half of a
    segment.  An engine that skipped sleep simulation, or truncated
    segments at the chunk boundary, would call this fault undetected."""
    spec = NetworkSpec(
        name="sleep",
        input_shape=(6,),
        layers=(DenseSpec(out_features=4),),
        lif=LIFParameters(threshold=0.05, leak=0.9, refractory_steps=0),
    )
    net = build_network(spec, np.random.default_rng(7))
    # Strongly positive weights + all-ones input: every neuron fires on
    # every driven step, so driven behaviour of a saturated neuron is
    # indistinguishable from golden.
    weight = net.spiking_modules[0].weight.data
    weight[:] = np.abs(weight) + 1.0
    chunks = [np.ones((4, 1, 6)), np.ones((3, 1, 6))]
    stimulus = TestStimulus(chunks=chunks, input_shape=(6,))
    simulator = FaultSimulator(net, FaultModelConfig())
    fault = NeuronFault(module_index=0, neuron_index=0, kind=NeuronFaultKind.SATURATED)

    golden = net.run_modules(stimulus.assembled())[-1]
    sleep = slice(4, 8)  # the sleep half of segment 0
    assert golden[:4, 0, :].all(), "golden must fire on every driven step"
    assert not golden[sleep, 0, 0].any(), "golden must be silent during sleep"

    reference = simulator.detect(stimulus.assembled(), [fault])
    assert reference.detected[0], "sanity: assembled campaign detects it"
    for drop, div, comp in OPTION_GRID:
        result = simulator.detect_segmented(
            stimulus,
            [fault],
            drop_detected=drop,
            divergence_exit=div,
            compact_batches=comp,
        )
        assert result.detected[0], (drop, div, comp)


# ----------------------------------------------------------------------
# Progress: per-(fault, segment) ticks, monotone, completes
# ----------------------------------------------------------------------
def test_progress_ticks_per_fault_segment(mixed_campaign):
    calls = []
    mixed_campaign["simulator"].detect_segmented(
        mixed_campaign["stimulus"],
        mixed_campaign["faults"],
        progress=lambda done, total: calls.append((done, total)),
    )
    n = len(mixed_campaign["faults"])
    total = n * mixed_campaign["stimulus"].num_segments
    assert calls, "progress never fired"
    assert calls[-1] == (total, total)
    dones = [done for done, _ in calls]
    assert dones == sorted(dones), "completion must be monotone"
    assert all(t == total for _, t in calls)


def test_parallel_progress_counts_segments(mixed_campaign):
    calls = []
    parallel_detect_segmented(
        mixed_campaign["simulator"],
        mixed_campaign["stimulus"],
        mixed_campaign["faults"],
        workers=1,
        progress=lambda done, total: calls.append((done, total)),
    )
    n = len(mixed_campaign["faults"])
    total = n * mixed_campaign["stimulus"].num_segments
    assert calls and calls[-1] == (total, total)
    dones = [done for done, _ in calls]
    assert dones == sorted(dones)


# ----------------------------------------------------------------------
# Hypothesis: random catalogs, chunk layouts, and option combos
# ----------------------------------------------------------------------
_NETS = {
    "dense": lambda: build_network(
        NetworkSpec(
            name="h-dense",
            input_shape=(8,),
            layers=(DenseSpec(out_features=6), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.9, refractory_steps=1),
        ),
        np.random.default_rng(11),
    ),
    "conv": lambda: build_network(
        NetworkSpec(
            name="h-conv",
            input_shape=(1, 5, 5),
            layers=(
                ConvSpec(out_channels=2, kernel=3, padding=1),
                FlattenSpec(),
                DenseSpec(out_features=3),
            ),
            lif=LIFParameters(leak=0.9),
        ),
        np.random.default_rng(12),
    ),
    "recurrent": lambda: build_network(
        NetworkSpec(
            name="h-rec",
            input_shape=(8,),
            layers=(RecurrentSpec(out_features=5), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.85, refractory_steps=1),
        ),
        np.random.default_rng(13),
    ),
}
_CACHE = {}


def _cached(kind):
    if kind not in _CACHE:
        net = _NETS[kind]()
        config = FaultModelConfig()
        catalog = build_catalog(net, config)
        _CACHE[kind] = (net, config, catalog)
    return _CACHE[kind]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(sorted(_NETS)),
    chunk_durations=st.lists(st.integers(1, 5), min_size=1, max_size=4),
    seed=st.integers(0, 2**16),
    n_faults=st.integers(1, 25),
    drop=st.booleans(),
    div=st.booleans(),
    comp=st.booleans(),
    workers=st.sampled_from([1, 4]),
)
def test_property_segmented_equals_assembled(
    kind, chunk_durations, seed, n_faults, drop, div, comp, workers
):
    net, config, catalog = _cached(kind)
    rng = np.random.default_rng(seed)
    all_faults = catalog.neuron_faults + catalog.synapse_faults
    picks = rng.choice(len(all_faults), size=min(n_faults, len(all_faults)), replace=False)
    faults = [all_faults[i] for i in sorted(picks)]
    stimulus = _stimulus(net.input_shape, chunk_durations, rng, density=0.5)
    simulator = FaultSimulator(net, config)
    reference = simulator.detect(stimulus.assembled(), faults)
    if workers > 1 and not fork_available():
        workers = 1
    result = parallel_detect_segmented(
        simulator,
        stimulus,
        faults,
        workers=workers,
        drop_detected=drop,
        divergence_exit=div,
        compact_batches=comp,
    )
    assert np.array_equal(result.detected, reference.detected)
    if not drop:
        assert np.array_equal(result.output_l1, reference.output_l1)
        assert np.array_equal(result.class_count_diff, reference.class_count_diff)
