"""Differential suite for the event-driven sparse spike kernels.

The event path (:mod:`repro.snn.events`) gathers active spike columns per
time block and runs index-gathered panel GEMMs instead of the full dense
matmul.  Per-column gather + GEMM over the *same* float64 values is
algebraically a sub-matrix of the dense product, but BLAS is free to
reassociate, so the engine guards every event-using attempt with a spike
margin and re-runs the group bit-exactly on a trip.  This suite pins the
externally visible contract:

- ``detected`` masks, ``output_l1`` and ``class_count_diff`` are
  bit-identical to the dense engine (``REPRO_EVENT_DRIVEN=off``) across
  density extremes — all-zero, all-ones, single-spike-per-step and
  alternating bursts — for dense, conv and recurrent topologies, in the
  flat, segmented, parallel and store-warmed engines;
- a transient fault window straddling a fused time-block boundary stays
  exact under event dispatch;
- a tripped guard provably falls back to the dense path (``fallbacks``
  counter increments, zero event blocks survive in the final counters,
  result unchanged);
- dispatch counters are stable under crash/resume: a campaign killed
  mid-segment and resumed from its checkpoint reports the *same*
  dispatch statistics as an uninterrupted checkpointed run.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.testset import TestStimulus
from repro.faults.catalog import build_catalog
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.faults.parallel import (
    fork_available,
    parallel_detect,
    parallel_detect_segmented,
)
from repro.faults.simulator import FaultSimulator
from repro.faults.store import CoverageStore
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters

# ----------------------------------------------------------------------
# Topologies and density-extreme stimuli
# ----------------------------------------------------------------------
_NETS = {
    "dense": lambda: build_network(
        NetworkSpec(
            name="ev-dense",
            input_shape=(8,),
            layers=(DenseSpec(out_features=6), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.9, refractory_steps=1),
        ),
        np.random.default_rng(21),
    ),
    "conv": lambda: build_network(
        NetworkSpec(
            name="ev-conv",
            input_shape=(1, 5, 5),
            layers=(
                ConvSpec(out_channels=2, kernel=3, padding=1),
                FlattenSpec(),
                DenseSpec(out_features=3),
            ),
            lif=LIFParameters(leak=0.9),
        ),
        np.random.default_rng(22),
    ),
    "recurrent": lambda: build_network(
        NetworkSpec(
            name="ev-rec",
            input_shape=(8,),
            layers=(RecurrentSpec(out_features=5), DenseSpec(out_features=3)),
            lif=LIFParameters(leak=0.85, refractory_steps=1),
        ),
        np.random.default_rng(23),
    ),
}
PATTERNS = ("zeros", "ones", "single", "bursts", "sparse")
_CACHE = {}


def _cached(kind):
    if kind not in _CACHE:
        net = _NETS[kind]()
        config = FaultModelConfig()
        catalog = build_catalog(net, config)
        pool = catalog.neuron_faults + catalog.synapse_faults
        faults = pool[:: max(1, len(pool) // 16)]
        _CACHE[kind] = (net, config, faults)
    return _CACHE[kind]


def _pattern_stimulus(pattern, input_shape, chunk_durations, seed=0):
    """Deterministic density-extreme stimuli, one spike layout per name."""
    size = int(np.prod(input_shape))
    rng = np.random.default_rng(seed)
    chunks = []
    t_abs = 0
    for duration in chunk_durations:
        block = np.zeros((duration, 1) + tuple(input_shape))
        flat = block.reshape(duration, size)
        if pattern == "ones":
            flat[:] = 1.0
        elif pattern == "single":
            for t in range(duration):
                flat[t, (t_abs + t) % size] = 1.0
        elif pattern == "bursts":
            flat[::2] = 1.0
        elif pattern == "sparse":
            flat[:] = (rng.random(flat.shape) < 0.08).astype(float)
        t_abs += duration
        chunks.append(block)
    return TestStimulus(chunks=chunks, input_shape=tuple(input_shape))


def _reference(kind, pattern, chunk_durations=(4, 3, 5)):
    net, config, faults = _cached(kind)
    stimulus = _pattern_stimulus(pattern, net.input_shape, chunk_durations)
    off = FaultSimulator(net, config, event_driven="off")
    return net, config, faults, stimulus, off.detect(stimulus.assembled(), faults)


def _assert_exact(result, reference):
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)


# ----------------------------------------------------------------------
# Density extremes: flat and segmented engines, forced on and auto
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(_NETS))
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("mode", ["on", "auto"])
def test_flat_event_matches_dense(kind, pattern, mode):
    net, config, faults, stimulus, reference = _reference(kind, pattern)
    simulator = FaultSimulator(net, config, event_driven=mode)
    result = simulator.detect(stimulus.assembled(), faults)
    _assert_exact(result, reference)
    assert result.dispatch is not None
    assert reference.dispatch is None  # off-mode runs carry no counters


@pytest.mark.parametrize("kind", sorted(_NETS))
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("mode", ["on", "auto"])
def test_segmented_event_matches_dense(kind, pattern, mode):
    net, config, faults, stimulus, reference = _reference(kind, pattern)
    simulator = FaultSimulator(net, config, event_driven=mode)
    result = simulator.detect_segmented(stimulus, faults, drop_detected=False)
    _assert_exact(result, reference)
    assert result.dispatch is not None


# ----------------------------------------------------------------------
# Transient window straddling a fused time-block boundary
# ----------------------------------------------------------------------
STRADDLING = (5, 16)  # cuts through both segment boundaries of (4, 3, 5)


def _straddling_faults(net):
    last = int(net.spiking_indices[-1])
    first = int(net.spiking_indices[0])
    return [
        NeuronFault(last, 0, NeuronFaultKind.DEAD, window=STRADDLING),
        NeuronFault(last, 1, NeuronFaultKind.SATURATED, window=STRADDLING),
        SynapseFault(first, 0, 0, SynapseFaultKind.DEAD, window=STRADDLING),
    ]


@pytest.mark.parametrize("mode", ["on", "auto"])
@pytest.mark.parametrize("time_block", [3, 7])
def test_transient_straddles_time_block_boundary(mode, time_block):
    """A transient active across [5, 16) cuts through fused time blocks;
    the event path gathers active columns *within* each block, so the
    parameter swap mid-block must stay exact under event dispatch."""
    net, config, _, stimulus, _ = _reference("dense", "sparse")
    faults = _straddling_faults(net)
    assembled = stimulus.assembled()
    reference = FaultSimulator(
        net, config, fused=True, time_block=time_block, event_driven="off"
    ).detect(assembled, faults)
    result = FaultSimulator(
        net, config, fused=True, time_block=time_block, event_driven=mode
    ).detect(assembled, faults)
    _assert_exact(result, reference)


# ----------------------------------------------------------------------
# Parallel and store-warmed engines
# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
@pytest.mark.parametrize("mode", ["on", "auto"])
def test_parallel_event_matches_dense(mode):
    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    simulator = FaultSimulator(net, config, event_driven=mode)
    flat = parallel_detect(simulator, stimulus.assembled(), faults, workers=4)
    _assert_exact(flat, reference)
    assert flat.dispatch is not None
    seg = parallel_detect_segmented(
        simulator, stimulus, faults, workers=4, drop_detected=False
    )
    _assert_exact(seg, reference)
    assert seg.dispatch is not None


@pytest.mark.parametrize("mode", ["on", "auto"])
def test_store_warm_event_matches_dense(tmp_path, mode):
    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    simulator = FaultSimulator(net, config, event_driven=mode)
    store = CoverageStore(tmp_path / f"ev-{mode}")
    cold = simulator.detect_segmented(
        stimulus, faults, drop_detected=False, store=store
    )
    warm = simulator.detect_segmented(
        stimulus, faults, drop_detected=False, store=store
    )
    _assert_exact(cold, reference)
    _assert_exact(warm, reference)


# ----------------------------------------------------------------------
# Dispatch counters
# ----------------------------------------------------------------------
def test_counters_pick_expected_tiers():
    net, config, faults, stimulus, _ = _reference("dense", "sparse")
    forced = FaultSimulator(net, config, event_driven="on").detect(
        stimulus.assembled(), faults
    )
    assert forced.dispatch["event_blocks"] > 0, "mode=on must take the event path"
    # These layers are far below MIN_EVENT_WORK, so auto always picks the
    # dense tier — the crossover floor is load-bearing on tiny panels.
    auto = FaultSimulator(net, config, event_driven="auto").detect(
        stimulus.assembled(), faults
    )
    assert auto.dispatch["event_blocks"] == 0
    assert auto.dispatch["dense_blocks"] > 0
    assert 0.0 < auto.dispatch["density"] < 1.0
    assert set(auto.dispatch["layers"]), "per-layer counters must be populated"


def test_counters_zero_input_takes_zero_tier():
    net, config, faults, stimulus, _ = _reference("dense", "zeros")
    result = FaultSimulator(net, config, event_driven="on").detect(
        stimulus.assembled(), faults
    )
    assert result.dispatch["zero_blocks"] > 0


def test_counters_sleep_census_matches_stimulus():
    net, config, faults, _, _ = _reference("dense", "sparse")
    stimulus = _pattern_stimulus("sparse", net.input_shape, (4, 3, 5))
    expected = sum(
        1
        for index in range(stimulus.num_segments)
        if stimulus.segment(index).shape[0]
        and not stimulus.segment(index)[-1].any()
    )
    assert expected > 0, "layout must contain sleep segments"
    simulator = FaultSimulator(net, config, event_driven="auto")
    serial = simulator.detect_segmented(stimulus, faults)
    assert serial.dispatch["sleep_segments"] == expected
    if fork_available():
        shard = parallel_detect_segmented(simulator, stimulus, faults, workers=4)
        assert shard.dispatch["sleep_segments"] == expected


# ----------------------------------------------------------------------
# Guard trip: provable dense fallback, result unchanged
# ----------------------------------------------------------------------
def test_flat_guard_trip_falls_back_to_dense(monkeypatch):
    """With the guard margin forced to +inf every event attempt trips:
    the counters must roll back (no surviving event blocks), ``fallbacks``
    must record the re-runs, and the result must still equal dense."""
    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    monkeypatch.setattr("repro.faults.simulator.EVENT_GUARD_MARGIN", float("inf"))
    result = FaultSimulator(net, config, event_driven="on").detect(
        stimulus.assembled(), faults
    )
    _assert_exact(result, reference)
    assert result.dispatch["fallbacks"] > 0
    assert result.dispatch["event_blocks"] == 0


def test_segmented_guard_trip_falls_back_to_dense(monkeypatch):
    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    monkeypatch.setattr("repro.faults.segmented.EVENT_GUARD_MARGIN", float("inf"))
    result = FaultSimulator(net, config, event_driven="on").detect_segmented(
        stimulus, faults, drop_detected=False
    )
    _assert_exact(result, reference)
    assert result.dispatch["fallbacks"] > 0
    assert result.dispatch["event_blocks"] == 0


# ----------------------------------------------------------------------
# Crash/resume: bit-identical results AND stable dispatch counters
# ----------------------------------------------------------------------
class _Boom(RuntimeError):
    pass


@pytest.mark.parametrize("mode", ["on", "auto"])
def test_resumed_campaign_reports_identical_dispatch_stats(mode):
    """Satellite regression: dispatch counters count each (fault, segment)
    once.  A campaign killed mid-segment and resumed from the checkpoint
    must report the *same* dispatch dict as an uninterrupted checkpointed
    run — re-verified golden replays and resume seeks add nothing."""
    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    simulator = FaultSimulator(net, config, event_driven=mode)

    states = []

    def recording_hook(campaign, group_index, segment_index):
        # export_state returns live views (the real frontend serializes
        # them to disk immediately); copy to model the disk round-trip.
        arrays, meta = campaign.export_state(group_index, segment_index)
        states.append(
            ({key: np.array(value) for key, value in arrays.items()}, dict(meta))
        )

    uninterrupted = simulator.detect_segmented(
        stimulus, faults, drop_detected=False, segment_hook=recording_hook
    )
    _assert_exact(uninterrupted, reference)
    assert len(states) >= 4, "campaign too small to crash mid-way"

    crash_at = len(states) // 2
    calls = {"n": 0}

    def crashing_hook(campaign, group_index, segment_index):
        calls["n"] += 1
        if calls["n"] == crash_at:
            raise _Boom

    with pytest.raises(_Boom):
        simulator.detect_segmented(
            stimulus, faults, drop_detected=False, segment_hook=crashing_hook
        )

    resumed = simulator.detect_segmented(
        stimulus,
        faults,
        drop_detected=False,
        segment_hook=lambda campaign, gi, si: None,
        resume_state=states[crash_at - 1],
    )
    _assert_exact(resumed, uninterrupted)
    assert resumed.dispatch == uninterrupted.dispatch


@pytest.mark.parametrize("mode", ["on", "auto"])
def test_chaos_crash_mid_segment_resumes_bit_identical(tmp_path, mode):
    """Kill the checkpointed frontend right after a partial save with
    event dispatch enabled; the resumed run must match dense bit-for-bit
    and still carry a dispatch dict."""
    from repro.errors import ChaosError
    from repro.utils import chaos

    net, config, faults, stimulus, reference = _reference("dense", "sparse")
    simulator = FaultSimulator(net, config, event_driven=mode)
    path = tmp_path / f"ev-{mode}.ckpt"
    with chaos.installed(chaos.ChaosPolicy.parse("raise@segment:3")):
        with pytest.raises(ChaosError):
            parallel_detect_segmented(
                simulator,
                stimulus,
                faults,
                workers=1,
                drop_detected=False,
                checkpoint_path=str(path),
                resume=False,
            )
    assert path.exists(), "partial checkpoint must survive the crash"
    result = parallel_detect_segmented(
        simulator,
        stimulus,
        faults,
        workers=1,
        drop_detected=False,
        checkpoint_path=str(path),
        resume=True,
    )
    _assert_exact(result, reference)
    assert result.dispatch is not None


# ----------------------------------------------------------------------
# Hypothesis: random layouts and fault subsets across the engines
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kind=st.sampled_from(sorted(_NETS)),
    pattern=st.sampled_from(PATTERNS),
    chunk_durations=st.lists(st.integers(1, 5), min_size=1, max_size=3),
    seed=st.integers(0, 2**16),
    n_faults=st.integers(1, 12),
    mode=st.sampled_from(["on", "auto"]),
    segmented=st.booleans(),
)
def test_property_event_matches_dense(
    kind, pattern, chunk_durations, seed, n_faults, mode, segmented
):
    net, config, catalog_faults = _cached(kind)
    rng = np.random.default_rng(seed)
    picks = rng.choice(
        len(catalog_faults), size=min(n_faults, len(catalog_faults)), replace=False
    )
    faults = [catalog_faults[i] for i in sorted(picks)]
    stimulus = _pattern_stimulus(pattern, net.input_shape, chunk_durations, seed=seed)
    reference = FaultSimulator(net, config, event_driven="off").detect(
        stimulus.assembled(), faults
    )
    simulator = FaultSimulator(net, config, event_driven=mode)
    if segmented:
        result = simulator.detect_segmented(stimulus, faults, drop_detected=False)
    else:
        result = simulator.detect(stimulus.assembled(), faults)
    _assert_exact(result, reference)
