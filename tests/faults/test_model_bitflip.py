"""Tests for fault descriptors and bit-flip arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultModelError
from repro.faults.bitflip import bitflip_value, flip_bit, int8_scale, quantize_int8
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)


class TestDescriptors:
    def test_neuron_fault_describe(self):
        f = NeuronFault(2, 7, NeuronFaultKind.DEAD)
        assert "neuron[2][7]:dead" == f.describe()

    def test_neuron_fault_rejects_negative(self):
        with pytest.raises(FaultModelError):
            NeuronFault(-1, 0, NeuronFaultKind.DEAD)

    def test_timing_kinds_flagged(self):
        assert NeuronFaultKind.TIMING_LEAK.is_timing
        assert not NeuronFaultKind.DEAD.is_timing

    def test_synapse_fault_describe(self):
        f = SynapseFault(1, 0, 42, SynapseFaultKind.BITFLIP, bit=6)
        assert "synapse[1][p0][42]:bitflip:b6" == f.describe()

    def test_bitflip_requires_bit(self):
        with pytest.raises(FaultModelError):
            SynapseFault(0, 0, 0, SynapseFaultKind.BITFLIP)

    def test_bit_only_on_bitflip(self):
        with pytest.raises(FaultModelError):
            SynapseFault(0, 0, 0, SynapseFaultKind.DEAD, bit=3)

    def test_bit_range(self):
        # Descriptors accept any bit below the widest supported word
        # (32 bits); per-config word-width checks live in validate_faults.
        SynapseFault(0, 0, 0, SynapseFaultKind.BITFLIP, bit=31)
        with pytest.raises(FaultModelError):
            SynapseFault(0, 0, 0, SynapseFaultKind.BITFLIP, bit=32)
        with pytest.raises(FaultModelError):
            SynapseFault(0, 0, 0, SynapseFaultKind.BITFLIP, bit=-1)

    def test_parameter_index_restricted(self):
        with pytest.raises(FaultModelError):
            SynapseFault(0, 2, 0, SynapseFaultKind.DEAD)

    def test_descriptors_hashable(self):
        a = NeuronFault(0, 1, NeuronFaultKind.DEAD)
        b = NeuronFault(0, 1, NeuronFaultKind.DEAD)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_is_neuron_property(self):
        assert NeuronFault(0, 0, NeuronFaultKind.DEAD).is_neuron
        assert not SynapseFault(0, 0, 0, SynapseFaultKind.DEAD).is_neuron


class TestFaultModelConfig:
    def test_defaults_valid(self):
        FaultModelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timing_threshold_factor": 0.0},
            {"timing_leak_factor": 1.5},
            {"timing_refractory_extra": -1},
            {"saturation_multiplier": 0.0},
            {"bitflip_bit": 9},
            {"neuron_sample_fraction": 0.0},
            {"synapse_sample_fraction": 1.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(FaultModelError):
            FaultModelConfig(**kwargs)


class TestBitflip:
    def test_scale_maps_peak_to_127(self):
        w = np.array([0.5, -1.27, 0.1])
        assert np.isclose(int8_scale(w), 0.01)

    def test_scale_of_zero_weights(self):
        assert int8_scale(np.zeros(3)) > 0

    def test_quantize_round_trip(self):
        scale = 0.01
        assert quantize_int8(0.5, scale) == 50
        assert quantize_int8(-0.5, scale) == -50

    def test_quantize_clips(self):
        assert quantize_int8(100.0, 0.01) == 127
        assert quantize_int8(-100.0, 0.01) == -128

    def test_quantize_rejects_bad_scale(self):
        with pytest.raises(FaultModelError):
            quantize_int8(0.5, 0.0)

    def test_flip_lsb(self):
        assert flip_bit(0, 0) == 1
        assert flip_bit(1, 0) == 0

    def test_flip_sign_bit(self):
        assert flip_bit(0, 7) == -128
        assert flip_bit(-128, 7) == 0
        assert flip_bit(1, 7) == -127

    def test_flip_out_of_range(self):
        with pytest.raises(FaultModelError):
            flip_bit(0, 8)
        with pytest.raises(FaultModelError):
            flip_bit(200, 0)

    @given(st.integers(min_value=-128, max_value=127), st.integers(min_value=0, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_property_involution(self, code, bit):
        assert flip_bit(flip_bit(code, bit), bit) == code

    @given(st.integers(min_value=-128, max_value=127), st.integers(min_value=0, max_value=7))
    @settings(max_examples=200, deadline=None)
    def test_property_stays_int8(self, code, bit):
        assert -128 <= flip_bit(code, bit) <= 127

    def test_bitflip_value_high_bit_large_change(self):
        scale = 0.01
        original = 0.1  # code 10
        flipped = bitflip_value(original, 6, scale)  # code 10 ^ 64 = 74
        assert np.isclose(flipped, 0.74)
