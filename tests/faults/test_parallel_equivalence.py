"""Differential suite: parallel campaigns must be *exactly* equal to the
serial sequential reference.

The reference is the one-fault-at-a-time path (``neuron_batch=1``,
``synapse_batch=1``, no neuron splicing).  Every (workers, neuron_batch)
combination is compared field-by-field with ``np.array_equal`` — no
tolerances — on a mixed neuron+synapse catalog, so process sharding,
batch-axis batching, K-batched synapse passes, and neuron splicing are all
pinned to the reference at once.
"""

import itertools

import numpy as np
import pytest

from repro.faults.catalog import build_catalog
from repro.faults.model import FaultModelConfig
from repro.faults.parallel import (
    ParallelFaultSimulator,
    fork_available,
    parallel_classify,
    parallel_detect,
    resolve_workers,
    shard_bounds,
)
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _mixed_net():
    spec = NetworkSpec(
        name="mixed",
        input_shape=(2, 6, 6),
        layers=(
            ConvSpec(out_channels=3, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=8),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _mixed_faults(net, config, per_kind=40):
    """Interleaved neuron+synapse subset, so every shard sees both kinds."""
    catalog = build_catalog(net, config)
    neuron = catalog.neuron_faults[:: max(1, len(catalog.neuron_faults) // per_kind)]
    synapse = catalog.synapse_faults[:: max(1, len(catalog.synapse_faults) // per_kind)]
    return [
        fault
        for pair in itertools.zip_longest(neuron, synapse)
        for fault in pair
        if fault is not None
    ]


@pytest.fixture(scope="module")
def campaign():
    net = _mixed_net()
    config = FaultModelConfig()
    faults = _mixed_faults(net, config)
    rng = np.random.default_rng(1)
    stimulus = (rng.random((8, 1, 2, 6, 6)) > 0.6).astype(float)
    inputs = (rng.random((8, 5, 2, 6, 6)) > 0.6).astype(float)
    labels = rng.integers(0, 4, size=5)
    reference = FaultSimulator(
        net, config, neuron_batch=1, synapse_batch=1, neuron_splice=False
    )
    return {
        "net": net,
        "config": config,
        "faults": faults,
        "stimulus": stimulus,
        "inputs": inputs,
        "labels": labels,
        "detect_ref": reference.detect(stimulus, faults),
        "classify_ref": reference.classify(inputs, labels, faults),
    }


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("neuron_batch", [1, 3, 16])
def test_parallel_detect_exactly_matches_serial(campaign, workers, neuron_batch):
    simulator = FaultSimulator(
        campaign["net"], campaign["config"], neuron_batch=neuron_batch
    )
    result = parallel_detect(
        simulator, campaign["stimulus"], campaign["faults"], workers=workers
    )
    reference = campaign["detect_ref"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)
    assert np.array_equal(result.class_count_diff, reference.class_count_diff)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("neuron_batch", [1, 3, 16])
def test_parallel_classify_exactly_matches_serial(campaign, workers, neuron_batch):
    simulator = FaultSimulator(
        campaign["net"], campaign["config"], neuron_batch=neuron_batch
    )
    result = parallel_classify(
        simulator,
        campaign["inputs"],
        campaign["labels"],
        campaign["faults"],
        workers=workers,
    )
    reference = campaign["classify_ref"]
    assert np.array_equal(result.critical, reference.critical)
    assert np.array_equal(result.accuracy_drop, reference.accuracy_drop)
    assert result.nominal_accuracy == reference.nominal_accuracy


def test_parallel_chunked_classify_matches_serial_chunked(campaign):
    """chunk_size early-exit is a per-fault decision, so sharding must not
    change which faults report NaN accuracy drops."""
    simulator = FaultSimulator(campaign["net"], campaign["config"])
    serial = simulator.classify(
        campaign["inputs"], campaign["labels"], campaign["faults"], chunk_size=2
    )
    parallel = parallel_classify(
        simulator,
        campaign["inputs"],
        campaign["labels"],
        campaign["faults"],
        workers=3,
        chunk_size=2,
    )
    assert np.array_equal(parallel.critical, serial.critical)
    assert np.array_equal(
        parallel.accuracy_drop, serial.accuracy_drop, equal_nan=True
    )


def test_parallel_progress_aggregates_to_completion(campaign):
    simulator = FaultSimulator(campaign["net"], campaign["config"])
    calls = []
    parallel_detect(
        simulator,
        campaign["stimulus"],
        campaign["faults"],
        workers=2,
        progress=lambda done, total: calls.append((done, total)),
    )
    n = len(campaign["faults"])
    assert calls, "progress never fired"
    assert calls[-1] == (n, n)
    dones = [done for done, _ in calls]
    assert dones == sorted(dones)
    assert all(total == n for _, total in calls)


def test_facade_matches_functions(campaign):
    facade = ParallelFaultSimulator(campaign["net"], campaign["config"], workers=2)
    result = facade.detect(campaign["stimulus"], campaign["faults"])
    reference = campaign["detect_ref"]
    assert np.array_equal(result.detected, reference.detected)
    assert np.array_equal(result.output_l1, reference.output_l1)


def test_network_untouched_by_parallel_campaign(campaign):
    """Workers mutate copy-on-write pages, never the parent's network."""
    net = campaign["net"]
    before = {k: v.copy() for k, v in net.state_dict().items()}
    simulator = FaultSimulator(net, campaign["config"])
    parallel_detect(simulator, campaign["stimulus"], campaign["faults"], workers=2)
    after = net.state_dict()
    for key in before:
        assert np.array_equal(before[key], after[key])
    for module in net.spiking_modules:
        assert not module.mode.any()


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(None) == 6

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_bad_env_rejected(self, monkeypatch):
        from repro.errors import FaultModelError

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(FaultModelError):
            resolve_workers(None)


class TestShardBounds:
    def test_partition_is_exact_and_ordered(self):
        for n, workers in [(1, 1), (7, 2), (100, 4), (5, 16)]:
            bounds = shard_bounds(n, workers)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
            assert all(hi > lo for lo, hi in bounds)

    def test_empty_catalog(self):
        assert shard_bounds(0, 4) == []

    def test_fork_probe_is_boolean(self):
        assert isinstance(fork_available(), bool)
