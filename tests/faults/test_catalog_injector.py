"""Tests for fault catalog enumeration and reversible injection."""

import numpy as np
import pytest

from repro.errors import InjectionError
from repro.faults.catalog import build_catalog
from repro.faults.injector import inject
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)
from repro.snn.builder import DenseSpec, NetworkSpec, RecurrentSpec, build_network
from repro.snn.neuron import LIFParameters, MODE_DEAD, MODE_SATURATED


def _net(seed=0):
    spec = NetworkSpec(
        name="t",
        input_shape=(6,),
        layers=(DenseSpec(out_features=5), DenseSpec(out_features=3)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


def _rec_net():
    spec = NetworkSpec(
        name="r",
        input_shape=(4,),
        layers=(RecurrentSpec(out_features=4), DenseSpec(out_features=2)),
    )
    return build_network(spec, np.random.default_rng(0))


class TestCatalog:
    def test_exhaustive_counts(self):
        net = _net()
        catalog = build_catalog(net)
        # 8 neurons x 5 kinds
        assert len(catalog.neuron_faults) == 8 * 5
        # (30 + 15) weights x 4 kinds
        assert len(catalog.synapse_faults) == 45 * 4
        assert len(catalog) == 40 + 180

    def test_recurrent_weights_included(self):
        catalog = build_catalog(_rec_net())
        recurrent = [f for f in catalog.synapse_faults if f.parameter_index == 1]
        assert len(recurrent) == 16 * 4

    def test_sampling_reduces_count(self):
        config = FaultModelConfig(synapse_sample_fraction=0.5)
        catalog = build_catalog(_net(), config, rng=np.random.default_rng(0))
        exhaustive = build_catalog(_net())
        assert len(catalog.synapse_faults) < len(exhaustive.synapse_faults)
        assert len(catalog.neuron_faults) == len(exhaustive.neuron_faults)

    def test_sampling_deterministic(self):
        config = FaultModelConfig(synapse_sample_fraction=0.3)
        a = build_catalog(_net(), config, rng=np.random.default_rng(7))
        b = build_catalog(_net(), config, rng=np.random.default_rng(7))
        assert a.synapse_faults == b.synapse_faults

    def test_sampling_requires_rng(self):
        config = FaultModelConfig(synapse_sample_fraction=0.5)
        with pytest.raises(Exception):
            build_catalog(_net(), config)

    def test_bitflip_fixed_bit(self):
        config = FaultModelConfig(
            synapse_kinds=(SynapseFaultKind.BITFLIP,), bitflip_bit=3
        )
        catalog = build_catalog(_net(), config)
        assert all(f.bit == 3 for f in catalog.synapse_faults)

    def test_bitflip_random_bits(self):
        config = FaultModelConfig(
            synapse_kinds=(SynapseFaultKind.BITFLIP,), bitflip_bit=None
        )
        catalog = build_catalog(_net(), config, rng=np.random.default_rng(1))
        bits = {f.bit for f in catalog.synapse_faults}
        assert len(bits) > 1

    def test_kind_filtering(self):
        config = FaultModelConfig(
            neuron_kinds=(NeuronFaultKind.DEAD,),
            synapse_kinds=(),
        )
        catalog = build_catalog(_net(), config)
        assert len(catalog.neuron_faults) == 8
        assert not catalog.synapse_faults

    def test_summary(self):
        assert "neuron faults" in build_catalog(_net()).summary()


class TestNeuronInjection:
    def test_dead_sets_mode_and_restores(self):
        net = _net()
        module = net.modules[0]
        fault = NeuronFault(0, 2, NeuronFaultKind.DEAD)
        with inject(net, fault, FaultModelConfig()):
            assert module.mode[2] == MODE_DEAD
        assert module.mode[2] == 0

    def test_saturated_sets_mode(self):
        net = _net()
        fault = NeuronFault(0, 1, NeuronFaultKind.SATURATED)
        with inject(net, fault, FaultModelConfig()):
            assert net.modules[0].mode[1] == MODE_SATURATED

    def test_timing_threshold_scales(self):
        net = _net()
        config = FaultModelConfig(timing_threshold_factor=2.0)
        before = net.modules[0].threshold[3]
        with inject(net, NeuronFault(0, 3, NeuronFaultKind.TIMING_THRESHOLD), config):
            assert np.isclose(net.modules[0].threshold[3], before * 2.0)
        assert np.isclose(net.modules[0].threshold[3], before)

    def test_timing_leak_scales(self):
        net = _net()
        config = FaultModelConfig(timing_leak_factor=0.5)
        before = net.modules[0].leak[0]
        with inject(net, NeuronFault(0, 0, NeuronFaultKind.TIMING_LEAK), config):
            assert np.isclose(net.modules[0].leak[0], before * 0.5)
        assert np.isclose(net.modules[0].leak[0], before)

    def test_timing_refractory_adds(self):
        net = _net()
        config = FaultModelConfig(timing_refractory_extra=3)
        before = net.modules[0].refractory_steps[4]
        with inject(net, NeuronFault(0, 4, NeuronFaultKind.TIMING_REFRACTORY), config):
            assert net.modules[0].refractory_steps[4] == before + 3
        assert net.modules[0].refractory_steps[4] == before

    def test_restores_on_exception(self):
        net = _net()
        fault = NeuronFault(0, 2, NeuronFaultKind.DEAD)
        with pytest.raises(RuntimeError):
            with inject(net, fault, FaultModelConfig()):
                raise RuntimeError("boom")
        assert net.modules[0].mode[2] == 0

    def test_yields_module_index(self):
        net = _net()
        with inject(net, NeuronFault(1, 0, NeuronFaultKind.DEAD), FaultModelConfig()) as idx:
            assert idx == 1

    def test_rejects_out_of_range_module(self):
        net = _net()
        with pytest.raises(InjectionError):
            with inject(net, NeuronFault(9, 0, NeuronFaultKind.DEAD), FaultModelConfig()):
                pass


class TestSynapseInjection:
    def test_dead_zeroes_weight(self):
        net = _net()
        weights = net.modules[0].weight.data
        before = weights.reshape(-1)[4]
        assert before != 0.0
        with inject(net, SynapseFault(0, 0, 4, SynapseFaultKind.DEAD), FaultModelConfig()):
            assert weights.reshape(-1)[4] == 0.0
        assert weights.reshape(-1)[4] == before

    def test_saturated_positive_is_outlier(self):
        net = _net()
        config = FaultModelConfig(saturation_multiplier=2.0)
        weights = net.modules[0].weight.data
        peak = np.abs(weights).max()
        with inject(net, SynapseFault(0, 0, 0, SynapseFaultKind.SATURATED_POSITIVE), config):
            assert np.isclose(weights.reshape(-1)[0], 2.0 * peak)

    def test_saturated_negative(self):
        net = _net()
        config = FaultModelConfig(saturation_multiplier=2.0)
        weights = net.modules[0].weight.data
        peak = np.abs(weights).max()
        with inject(net, SynapseFault(0, 0, 1, SynapseFaultKind.SATURATED_NEGATIVE), config):
            assert np.isclose(weights.reshape(-1)[1], -2.0 * peak)

    def test_bitflip_changes_value(self):
        net = _net()
        weights = net.modules[0].weight.data
        before = weights.reshape(-1)[2]
        with inject(net, SynapseFault(0, 0, 2, SynapseFaultKind.BITFLIP, bit=6), FaultModelConfig()):
            assert weights.reshape(-1)[2] != before
        assert weights.reshape(-1)[2] == before

    def test_recurrent_weight_targetable(self):
        net = _rec_net()
        rec = net.modules[0].recurrent_weight.data
        before = rec.reshape(-1)[5]
        with inject(net, SynapseFault(0, 1, 5, SynapseFaultKind.DEAD), FaultModelConfig()):
            assert rec.reshape(-1)[5] == 0.0
        assert rec.reshape(-1)[5] == before

    def test_rejects_bad_weight_index(self):
        net = _net()
        with pytest.raises(InjectionError):
            with inject(net, SynapseFault(0, 0, 10_000, SynapseFaultKind.DEAD), FaultModelConfig()):
                pass

    def test_rejects_bad_parameter_index(self):
        net = _net()
        with pytest.raises(InjectionError):
            with inject(net, SynapseFault(0, 1, 0, SynapseFaultKind.DEAD), FaultModelConfig()):
                pass

    def test_rejects_non_spiking_module(self):
        from repro.snn.builder import ConvSpec, FlattenSpec, PoolSpec

        spec = NetworkSpec(
            name="c",
            input_shape=(1, 4, 4),
            layers=(ConvSpec(out_channels=2, kernel=3, padding=1), PoolSpec(2),
                    FlattenSpec(), DenseSpec(out_features=2)),
        )
        net = build_network(spec, np.random.default_rng(0))
        with pytest.raises(InjectionError):
            with inject(net, NeuronFault(1, 0, NeuronFaultKind.DEAD), FaultModelConfig()):
                pass
