"""Differential suite for the persistent coverage store.

The store makes ``verify_coverage`` *differential*: a warm re-run against
a stimulus or catalog that changed splices cached per-(fault-group,
segment) outcomes for the unchanged prefix and recomputes only the
affected suffix.  The contract is absolute: a warm incremental run must
be **bit-identical** to a cold full run of the same engine configuration
— ``np.array_equal`` on the detection mask and, with identical engine
options, on ``output_l1`` / ``class_count_diff`` too.

Three edit scenarios are pinned, each across serial, 4-worker, fused,
legacy (non-fused), float64, and gated-float32 engines:

- **append** — a new iteration chunk is appended to the test.  The chain
  digest of the previously-final segment changes (its sleep flag flips),
  so only the last old segment and the new one recompute.
- **edit** — a mid-test chunk is replaced; everything from that segment
  on recomputes, the prefix comes from the store.
- **grow** — the fault catalog gains members.  Regrouped faults miss the
  per-group records, but the golden segment end-states are reused
  cross-run (they are keyed by network + stimulus alone).
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.core.testset import TestStimulus
from repro.faults.catalog import build_catalog
from repro.faults.model import FaultModelConfig
from repro.faults.parallel import fork_available, parallel_detect_segmented
from repro.faults.simulator import FaultSimulator
from repro.faults.store import CoverageStore
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _store_net():
    spec = NetworkSpec(
        name="store-mixed",
        input_shape=(2, 4, 4),
        layers=(
            ConvSpec(out_channels=2, kernel=3, padding=1),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=6),
            DenseSpec(out_features=4),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(0))


def _interleaved_faults(catalog, per_kind, phase=0):
    neuron = catalog.neuron_faults[phase :: max(1, len(catalog.neuron_faults) // per_kind)]
    synapse = catalog.synapse_faults[phase :: max(1, len(catalog.synapse_faults) // per_kind)]
    return [
        fault
        for pair in itertools.zip_longest(neuron, synapse)
        for fault in pair
        if fault is not None
    ]


def _chunks(durations, rng, density=0.45):
    return [
        (rng.random((d, 1, 2, 4, 4)) < density).astype(float) for d in durations
    ]


@pytest.fixture(scope="module")
def campaign():
    net = _store_net()
    config = FaultModelConfig()
    catalog = build_catalog(net, config)
    faults = _interleaved_faults(catalog, per_kind=20)
    rng = np.random.default_rng(1)
    base = _chunks([3, 2, 4], rng)
    extra = _chunks([3], rng)[0]
    edited = list(base)
    edited[1] = _chunks([2], np.random.default_rng(9))[0]
    grown = faults + [
        f for f in _interleaved_faults(catalog, per_kind=12, phase=1)
        if f not in faults
    ]
    stimuli = {
        "append": TestStimulus(chunks=base + [extra], input_shape=(2, 4, 4)),
        "edit": TestStimulus(chunks=edited, input_shape=(2, 4, 4)),
        "grow": TestStimulus(chunks=base, input_shape=(2, 4, 4)),
    }
    return {
        "net": net,
        "config": config,
        "faults": faults,
        "grown": grown,
        "base": TestStimulus(chunks=base, input_shape=(2, 4, 4)),
        "stimuli": stimuli,
    }


ENGINES = [
    pytest.param("serial-fused", 1, True, "float64", id="serial-fused-f64"),
    pytest.param("serial-legacy", 1, False, "float64", id="serial-legacy-f64"),
    pytest.param(
        "pool4-fused", 4, True, "float64", id="pool4-fused-f64",
        marks=pytest.mark.skipif(
            not fork_available(), reason="fork start method unavailable"
        ),
    ),
    pytest.param("serial-f32", 1, True, "float32", id="serial-fused-f32-gated"),
]


def _run(campaign, stimulus, faults, *, workers, fused, dtype, store, drop=True):
    config = dataclasses.replace(campaign["config"], dtype=dtype)
    simulator = FaultSimulator(campaign["net"], config, fused=fused)
    if workers == 1:
        return simulator.detect_segmented(
            stimulus, faults, drop_detected=drop, store=store
        )
    return parallel_detect_segmented(
        simulator, stimulus, faults, workers=workers, drop_detected=drop,
        store=store,
    )


@pytest.mark.parametrize("name, workers, fused, dtype", ENGINES)
def test_incremental_rerun_is_bit_identical_to_cold(
    campaign, tmp_path, name, workers, fused, dtype
):
    store = CoverageStore(tmp_path / name)
    engine = dict(workers=workers, fused=fused, dtype=dtype)
    faults = campaign["faults"]
    # Populate: the base test set's campaign runs once against the store.
    seeded = _run(campaign, campaign["base"], faults, store=store, **engine)
    cold_base = _run(campaign, campaign["base"], faults, store=None, **engine)
    assert np.array_equal(seeded.detected, cold_base.detected)
    assert np.array_equal(seeded.output_l1, cold_base.output_l1)
    assert np.array_equal(seeded.class_count_diff, cold_base.class_count_diff)
    for scenario, stimulus in campaign["stimuli"].items():
        scenario_faults = campaign["grown"] if scenario == "grow" else faults
        cold = _run(campaign, stimulus, scenario_faults, store=None, **engine)
        hits_before = store.hits
        records_before = store.stat()["records"]
        warm = _run(campaign, stimulus, scenario_faults, store=store, **engine)
        if workers == 1:
            assert store.hits > hits_before, (
                f"{scenario}: warm run never touched the store — the"
                " differential path was not exercised"
            )
        else:
            # Forked workers hit the store in their own processes, so the
            # parent's counters stay put; prove reuse on disk instead — a
            # warm run must add strictly fewer records than the same
            # campaign writes into an empty store.
            fresh = CoverageStore(tmp_path / f"{name}-{scenario}-fresh")
            _run(campaign, stimulus, scenario_faults, store=fresh, **engine)
            added = store.stat()["records"] - records_before
            assert added < fresh.stat()["records"], (
                f"{scenario}: warm run rewrote the full record set — the"
                " differential path was not exercised"
            )
        assert np.array_equal(warm.detected, cold.detected), scenario
        assert np.array_equal(warm.output_l1, cold.output_l1), scenario
        assert np.array_equal(warm.class_count_diff, cold.class_count_diff), scenario


def test_warm_rerun_of_unchanged_test_writes_nothing(campaign, tmp_path):
    store = CoverageStore(tmp_path / "idempotent")
    faults = campaign["faults"]
    first = _run(
        campaign, campaign["base"], faults,
        workers=1, fused=True, dtype="float64", store=store,
    )
    writes = store.writes
    again = _run(
        campaign, campaign["base"], faults,
        workers=1, fused=True, dtype="float64", store=store,
    )
    assert store.writes == writes, "identical re-run must be fully cached"
    assert np.array_equal(first.detected, again.detected)
    assert np.array_equal(first.output_l1, again.output_l1)
    assert np.array_equal(first.class_count_diff, again.class_count_diff)


def test_store_matches_assembled_reference(campaign, tmp_path):
    """Absolute anchor: warm differential results equal the assembled
    single-shot campaign, not merely each other."""
    store = CoverageStore(tmp_path / "anchor")
    faults = campaign["faults"]
    simulator = FaultSimulator(campaign["net"], campaign["config"])
    _run(
        campaign, campaign["base"], faults,
        workers=1, fused=True, dtype="float64", store=store,
    )
    stimulus = campaign["stimuli"]["append"]
    reference = simulator.detect(stimulus.assembled(), faults)
    warm = _run(
        campaign, stimulus, faults,
        workers=1, fused=True, dtype="float64", store=store,
    )
    assert np.array_equal(warm.detected, reference.detected)


def test_exact_metrics_mode_is_differential_too(campaign, tmp_path):
    """``drop_detected=False`` (the Fig. 9 exact-metrics path) keys its
    records separately and stays bit-identical warm-vs-cold."""
    store = CoverageStore(tmp_path / "exact")
    faults = campaign["faults"]
    engine = dict(workers=1, fused=True, dtype="float64")
    _run(campaign, campaign["base"], faults, store=store, drop=False, **engine)
    stimulus = campaign["stimuli"]["append"]
    cold = _run(campaign, stimulus, faults, store=None, drop=False, **engine)
    warm = _run(campaign, stimulus, faults, store=store, drop=False, **engine)
    assert np.array_equal(warm.detected, cold.detected)
    assert np.array_equal(warm.output_l1, cold.output_l1)
    assert np.array_equal(warm.class_count_diff, cold.class_count_diff)


def test_option_change_never_reuses_records(campaign, tmp_path):
    """Records written under one option fingerprint are invisible to a
    campaign running under another — a drop-mode flip re-verifies from
    scratch rather than splicing incompatible accumulators."""
    store = CoverageStore(tmp_path / "options")
    faults = campaign["faults"]
    engine = dict(workers=1, fused=True, dtype="float64")
    _run(campaign, campaign["base"], faults, store=store, drop=True, **engine)
    writes = store.writes
    cold = _run(campaign, campaign["base"], faults, store=None, drop=False, **engine)
    other = _run(campaign, campaign["base"], faults, store=store, drop=False, **engine)
    assert store.writes > writes, "changed options must write fresh records"
    assert np.array_equal(other.detected, cold.detected)
    assert np.array_equal(other.output_l1, cold.output_l1)
    assert np.array_equal(other.class_count_diff, cold.class_count_diff)
