"""Tests for parameter-sensitivity sweeps."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults.model import NeuronFault, NeuronFaultKind
from repro.faults.sensitivity import SensitivityCurve, SensitivityPoint, sweep_timing_fault
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.datasets import SHDLike
from repro.training import Trainer


@pytest.fixture(scope="module")
def setup():
    dataset = SHDLike(train_size=60, test_size=24, channels=20, steps=14, seed=0)
    spec = NetworkSpec(
        name="sens",
        input_shape=(20,),
        layers=(DenseSpec(out_features=12), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    Trainer(network, dataset, lr=0.03, batch_size=16).fit(epochs=3, rng=np.random.default_rng(1))
    stimulus = (np.random.default_rng(2).random((14, 1, 20)) > 0.4).astype(float)
    inputs, labels = dataset.subset(12, "test")
    return network, stimulus, inputs, labels


class TestSweep:
    def test_identity_magnitude_not_detected(self, setup):
        network, stimulus, inputs, labels = setup
        fault = NeuronFault(0, 0, NeuronFaultKind.TIMING_THRESHOLD)
        curve = sweep_timing_fault(network, fault, [1.0], stimulus, inputs, labels)
        # Factor 1.0 changes nothing: not detected, no accuracy impact.
        assert not curve.points[0].detected
        assert curve.points[0].accuracy_drop == 0.0

    def test_large_threshold_shift_detected(self, setup):
        network, stimulus, inputs, labels = setup
        # Sweep an active neuron: find one that fires under the stimulus.
        records = network.run_spiking_layers(stimulus)
        active = int(np.nonzero(records[0][:, 0, :].sum(axis=0))[0][0])
        fault = NeuronFault(0, active, NeuronFaultKind.TIMING_THRESHOLD)
        curve = sweep_timing_fault(
            network, fault, [1.0, 1.5, 3.0, 10.0], stimulus, inputs, labels
        )
        assert curve.points[-1].detected  # 10x threshold silences the neuron

    def test_thresholds_monotone_lookup(self):
        curve = SensitivityCurve(
            fault=NeuronFault(0, 0, NeuronFaultKind.TIMING_LEAK),
            points=[
                SensitivityPoint(1.0, 0.0, False),
                SensitivityPoint(0.8, 0.0, True),
                SensitivityPoint(0.5, 0.1, True),
            ],
        )
        assert curve.detection_threshold() == 0.8
        assert curve.criticality_threshold() == 0.5
        assert curve.detected_before_critical

    def test_never_critical_is_fine(self):
        curve = SensitivityCurve(
            fault=NeuronFault(0, 0, NeuronFaultKind.TIMING_LEAK),
            points=[SensitivityPoint(0.9, 0.0, False)],
        )
        assert curve.criticality_threshold() is None
        assert curve.detected_before_critical

    def test_missed_critical_flagged(self):
        curve = SensitivityCurve(
            fault=NeuronFault(0, 0, NeuronFaultKind.TIMING_LEAK),
            points=[SensitivityPoint(0.5, 0.2, False)],
        )
        assert not curve.detected_before_critical

    def test_rejects_non_timing_fault(self, setup):
        network, stimulus, inputs, labels = setup
        fault = NeuronFault(0, 0, NeuronFaultKind.DEAD)
        with pytest.raises(FaultModelError):
            sweep_timing_fault(network, fault, [1.0], stimulus, inputs, labels)

    def test_network_restored(self, setup):
        network, stimulus, inputs, labels = setup
        fault = NeuronFault(0, 1, NeuronFaultKind.TIMING_REFRACTORY)
        sweep_timing_fault(network, fault, [1, 3, 5], stimulus, inputs, labels)
        assert np.all(
            network.spiking_modules[0].refractory_steps
            == network.spiking_modules[0].params.refractory_steps
        )
