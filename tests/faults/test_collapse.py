"""Tests for structural fault collapsing."""

import numpy as np
import pytest

from repro.faults.catalog import build_catalog
from repro.faults.collapse import (
    REASON_ALREADY_SATURATED,
    REASON_DISCONNECTED_NEURON,
    REASON_ZERO_WEIGHT_DEAD,
    collapse_catalog,
)
from repro.faults.injector import inject
from repro.faults.model import FaultModelConfig
from repro.faults.simulator import FaultSimulator
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)


def _dense_net(seed=0):
    spec = NetworkSpec(
        name="c",
        input_shape=(6,),
        layers=(DenseSpec(out_features=5), DenseSpec(out_features=3)),
    )
    return build_network(spec, np.random.default_rng(seed))


class TestCollapseRules:
    def test_nothing_dropped_for_generic_weights(self):
        net = _dense_net()
        catalog = build_catalog(net)
        collapsed = collapse_catalog(net, catalog)
        assert not collapsed.dropped
        assert len(collapsed.kept) == len(catalog)

    def test_zero_weight_dead_dropped(self):
        net = _dense_net()
        net.modules[0].weight.data.reshape(-1)[3] = 0.0
        collapsed = collapse_catalog(net, build_catalog(net))
        assert collapsed.reasons.get(REASON_ZERO_WEIGHT_DEAD) == 1

    def test_already_saturated_dropped(self):
        net = _dense_net()
        config = FaultModelConfig(saturation_multiplier=1.0)
        weights = net.modules[1].weight.data
        peak_index = int(np.abs(weights).argmax())
        weights.reshape(-1)[peak_index] = abs(weights.reshape(-1)[peak_index])
        collapsed = collapse_catalog(net, build_catalog(net, config))
        assert collapsed.reasons.get(REASON_ALREADY_SATURATED, 0) >= 1

    def test_disconnected_hidden_neuron_dropped(self):
        net = _dense_net()
        net.modules[1].weight.data[2, :] = 0.0  # hidden neuron 2 feeds nothing
        collapsed = collapse_catalog(net, build_catalog(net))
        disconnected = [
            f for f, reason in collapsed.dropped if reason == REASON_DISCONNECTED_NEURON
        ]
        # All 5 neuron fault kinds for that neuron are dropped.
        assert len(disconnected) == 5
        assert all(f.module_index == 0 and f.neuron_index == 2 for f in disconnected)

    def test_output_neurons_never_dropped(self):
        net = _dense_net()
        # Even if hypothetically disconnected, output faults are observable.
        collapsed = collapse_catalog(net, build_catalog(net))
        output_dropped = [
            f for f, _ in collapsed.dropped if f.is_neuron and f.module_index == 1
        ]
        assert not output_dropped

    def test_conv_predecessors_conservative(self):
        spec = NetworkSpec(
            name="conv",
            input_shape=(1, 4, 4),
            layers=(ConvSpec(out_channels=2, kernel=3, padding=1), PoolSpec(2),
                    FlattenSpec(), DenseSpec(out_features=3)),
        )
        net = build_network(spec, np.random.default_rng(0))
        collapsed = collapse_catalog(net, build_catalog(net))
        # Conv neurons feed a pool: analysis is conservative -> none dropped.
        assert not any(
            reason == REASON_DISCONNECTED_NEURON for _, reason in collapsed.dropped
        )

    def test_recurrent_self_connection_counts(self):
        spec = NetworkSpec(
            name="rec",
            input_shape=(4,),
            layers=(RecurrentSpec(out_features=3), DenseSpec(out_features=2)),
        )
        net = build_network(spec, np.random.default_rng(0))
        # Zero the dense input rows for neuron 1 but keep its recurrence:
        # it still influences the network through W_rec -> must be kept.
        net.modules[1].weight.data[1, :] = 0.0
        collapsed = collapse_catalog(net, build_catalog(net))
        dropped_neurons = {
            (f.module_index, f.neuron_index)
            for f, reason in collapsed.dropped
            if reason == REASON_DISCONNECTED_NEURON
        }
        assert (0, 1) not in dropped_neurons

    def test_atol_widens_zero_class(self):
        net = _dense_net()
        net.modules[0].weight.data.reshape(-1)[0] = 1e-9
        strict = collapse_catalog(net, build_catalog(net), atol=0.0)
        loose = collapse_catalog(net, build_catalog(net), atol=1e-6)
        assert len(loose.dropped) > len(strict.dropped)

    def test_summary_text(self):
        net = _dense_net()
        net.modules[0].weight.data.reshape(-1)[3] = 0.0
        text = collapse_catalog(net, build_catalog(net)).summary()
        assert "collapsed" in text


class TestCollapseSoundness:
    def test_dropped_faults_truly_undetectable(self):
        """Every dropped fault must produce a zero output difference for a
        strong stimulus — the soundness contract of collapsing."""
        net = _dense_net()
        net.modules[0].weight.data.reshape(-1)[3] = 0.0
        net.modules[1].weight.data[2, :] = 0.0
        catalog = build_catalog(net)
        collapsed = collapse_catalog(net, catalog)
        assert collapsed.dropped
        stimulus = (np.random.default_rng(0).random((16, 1, 6)) > 0.3).astype(float)
        simulator = FaultSimulator(net)
        detection = simulator.detect(stimulus, [f for f, _ in collapsed.dropped])
        assert not detection.detected.any()
