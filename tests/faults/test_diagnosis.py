"""Tests for the fault dictionary / diagnosis module."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults.catalog import build_catalog
from repro.faults.diagnosis import FaultDictionary, observed_signature
from repro.faults.injector import inject
from repro.faults.model import FaultModelConfig
from repro.faults.simulator import FaultSimulator
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network


@pytest.fixture(scope="module")
def setup():
    spec = NetworkSpec(
        name="diag",
        input_shape=(10,),
        layers=(DenseSpec(out_features=8), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    config = FaultModelConfig(synapse_sample_fraction=0.2)
    catalog = build_catalog(network, config, rng=np.random.default_rng(1))
    stimulus = (np.random.default_rng(2).random((14, 1, 10)) > 0.4).astype(float)
    simulator = FaultSimulator(network, config)
    detection = simulator.detect(stimulus, catalog.faults)
    return network, config, catalog, stimulus, detection


class TestFaultDictionary:
    def test_contains_only_detected(self, setup):
        _, _, _, _, detection = setup
        dictionary = FaultDictionary.from_detection(detection)
        assert len(dictionary) == int(detection.detected.sum())

    def test_resolution_in_range(self, setup):
        _, _, _, _, detection = setup
        dictionary = FaultDictionary.from_detection(detection)
        assert 0.0 <= dictionary.resolution() <= 1.0

    def test_self_diagnosis_top_match(self, setup):
        """Injecting a detected fault and diagnosing its own signature must
        rank it at distance zero."""
        network, config, catalog, stimulus, detection = setup
        dictionary = FaultDictionary.from_detection(detection)
        golden = network.run(stimulus)
        # Pick a detected fault with a distinctive signature.
        index = int(np.argmax(detection.output_l1))
        fault = detection.faults[index]
        with inject(network, fault, config):
            faulty = network.run(stimulus)
        signature = observed_signature(golden, faulty)
        candidates = dictionary.diagnose(signature, top=5)
        assert candidates[0][1] == 0.0
        assert any(f == fault for f, d in candidates if d == 0.0)

    def test_diagnose_rejects_bad_shape(self, setup):
        _, _, _, _, detection = setup
        dictionary = FaultDictionary.from_detection(detection)
        with pytest.raises(FaultModelError):
            dictionary.diagnose(np.zeros(99))

    def test_empty_dictionary(self):
        from repro.faults.simulator import DetectionResult

        detection = DetectionResult(
            faults=[], detected=np.zeros(0, dtype=bool),
            output_l1=np.zeros(0), class_count_diff=np.zeros((0, 4)), wall_time=0.0,
        )
        dictionary = FaultDictionary.from_detection(detection)
        assert dictionary.resolution() == 0.0
        assert dictionary.diagnose(np.zeros(4)) == []

    def test_observed_signature_shape_check(self):
        with pytest.raises(FaultModelError):
            observed_signature(np.zeros((4, 1, 3)), np.zeros((5, 1, 3)))

    def test_observed_signature_values(self):
        golden = np.zeros((4, 1, 2))
        faulty = np.zeros((4, 1, 2))
        faulty[0, 0, 1] = 1.0
        faulty[2, 0, 1] = 1.0
        assert observed_signature(golden, faulty).tolist() == [0.0, 2.0]
