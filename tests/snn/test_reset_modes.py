"""Tests for the soft-reset (reset-by-subtraction) LIF variant."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.builder import DenseSpec, NetworkSpec, build_network
from repro.snn.neuron import LIFParameters, LIFState, lif_step_numpy
from repro.autograd.tensor import Tensor


def _run(currents, reset_mode, leak=1.0, threshold=1.0, refrac=0):
    theta = np.full((1,), threshold)
    lk = np.full((1,), leak)
    rf = np.full((1,), refrac, dtype=np.int64)
    state = LIFState.zeros_numpy((1, 1))
    spikes, potentials = [], []
    for c in currents:
        s = lif_step_numpy(np.array([[c]]), state, theta, lk, rf, None, reset_mode)
        spikes.append(float(s[0, 0]))
        potentials.append(float(state.potential[0, 0]))
    return spikes, potentials


class TestResetModes:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LIFParameters(reset_mode="bogus")
        LIFParameters(reset_mode="subtract")  # valid

    def test_zero_reset_discards_residual(self):
        # Input 1.5 crosses threshold 1.0 with 0.5 residual; hard reset
        # discards it, so a following 0.6 does not fire.
        spikes, _ = _run([1.5, 0.6], reset_mode="zero")
        assert spikes == [1.0, 0.0]

    def test_subtract_reset_preserves_residual(self):
        # Soft reset keeps the 0.5 residual: 0.5 + 0.6 = 1.1 >= 1.0 fires.
        spikes, _ = _run([1.5, 0.6], reset_mode="subtract")
        assert spikes == [1.0, 1.0]

    def test_modes_agree_below_threshold(self):
        a, _ = _run([0.4, 0.3, 0.2], reset_mode="zero")
        b, _ = _run([0.4, 0.3, 0.2], reset_mode="subtract")
        assert a == b == [0.0, 0.0, 0.0]

    def test_subtract_conserves_charge(self):
        # With leak 1.0 and no refractory, total spikes ~ total charge / theta.
        drive = [0.7] * 20
        spikes, _ = _run(drive, reset_mode="subtract")
        assert sum(spikes) == int(sum(drive) / 1.0)

    def test_paths_agree_subtract(self):
        spec = NetworkSpec(
            name="soft",
            input_shape=(8,),
            layers=(DenseSpec(out_features=6), DenseSpec(out_features=4)),
            lif=LIFParameters(leak=0.9, refractory_steps=1, reset_mode="subtract"),
        )
        net = build_network(spec, np.random.default_rng(0))
        seq = (np.random.default_rng(1).random((10, 2, 8)) > 0.5).astype(float)
        fast = net.run_spiking_layers(seq)
        record = net.forward([Tensor(seq[t]) for t in range(10)])
        for layer in range(2):
            tape = record.stacked(layer).data
            assert np.array_equal(tape.reshape(tape.shape[0], tape.shape[1], -1), fast[layer])

    def test_generation_works_with_subtract(self):
        from repro.core import TestGenConfig, TestGenerator

        spec = NetworkSpec(
            name="soft-gen",
            input_shape=(8,),
            layers=(DenseSpec(out_features=6), DenseSpec(out_features=4)),
            lif=LIFParameters(leak=0.9, refractory_steps=1, reset_mode="subtract"),
        )
        net = build_network(spec, np.random.default_rng(0))
        config = TestGenConfig(steps_stage1=30, probe_steps=60, max_iterations=2,
                               t_in_max=24, time_limit_s=60)
        result = TestGenerator(net, config, np.random.default_rng(1)).generate()
        assert result.num_chunks >= 1
