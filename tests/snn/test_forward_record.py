"""Tests for ForwardRecord helpers and network introspection."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.snn import DenseSpec, NetworkSpec, build_network
from repro.snn.network import ForwardRecord


def _record():
    hidden = [Tensor(np.full((1, 4), t % 2, dtype=float)) for t in range(3)]
    out = [Tensor(np.full((1, 2), 1.0)) for _ in range(3)]
    return ForwardRecord(layer_spikes=[hidden, out], layer_names=["h", "o"])


class TestForwardRecord:
    def test_output_is_last_layer(self):
        record = _record()
        assert record.output is record.layer_spikes[-1]

    def test_stacked_shape(self):
        record = _record()
        assert record.stacked(0).shape == (3, 1, 4)

    def test_stacked_output_equals_stacked_last(self):
        record = _record()
        assert np.array_equal(record.stacked_output().data, record.stacked(1).data)

    def test_stacked_values_in_time_order(self):
        record = _record()
        stacked = record.stacked(0).data
        assert stacked[0].sum() == 0.0
        assert stacked[1].sum() == 4.0


class TestNetworkIntrospection:
    @pytest.fixture()
    def net(self):
        spec = NetworkSpec(
            name="intro", input_shape=(5,),
            layers=(DenseSpec(out_features=4), DenseSpec(out_features=3)),
        )
        return build_network(spec, np.random.default_rng(0))

    def test_module_names_assigned(self, net):
        assert net.modules[0].name.startswith("0:")
        assert "DenseLIF" in net.modules[0].name

    def test_spiking_indices(self, net):
        assert net.spiking_indices == [0, 1]
        assert len(net.spiking_modules) == 2

    def test_parameters_collected(self, net):
        assert len(net.parameters()) == 2

    def test_num_classes(self, net):
        assert net.num_classes == 3
