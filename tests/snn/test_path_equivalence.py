"""The tensor (autograd) path and the numpy fast path must produce
identical spike trains for identical inputs — fault simulation results and
optimisation-time spike records would otherwise disagree."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)
from repro.snn.neuron import LIFParameters


def _compare(net, seq):
    fast = net.run_spiking_layers(seq)
    tensor_seq = [Tensor(seq[t]) for t in range(seq.shape[0])]
    record = net.forward(tensor_seq)
    for layer_idx, fast_rec in enumerate(fast):
        tape = record.stacked(layer_idx).data
        tape = tape.reshape(tape.shape[0], tape.shape[1], -1)
        assert np.array_equal(tape, fast_rec), (
            f"layer {layer_idx} diverges between fast path and tape"
        )


@pytest.mark.parametrize("refrac", [0, 2])
@pytest.mark.parametrize("leak", [1.0, 0.8])
def test_dense_network_equivalence(refrac, leak):
    spec = NetworkSpec(
        name="dense",
        input_shape=(12,),
        layers=(DenseSpec(out_features=10), DenseSpec(out_features=6), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=leak, refractory_steps=refrac),
    )
    net = build_network(spec, np.random.default_rng(0))
    seq = (np.random.default_rng(1).random((12, 2, 12)) > 0.5).astype(float)
    _compare(net, seq)


def test_conv_network_equivalence():
    spec = NetworkSpec(
        name="conv",
        input_shape=(2, 8, 8),
        layers=(
            ConvSpec(out_channels=4, kernel=3, padding=1),
            PoolSpec(window=2),
            ConvSpec(out_channels=6, kernel=3, padding=1, stride=1),
            PoolSpec(window=2),
            FlattenSpec(),
            DenseSpec(out_features=10),
            DenseSpec(out_features=5),
        ),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    net = build_network(spec, np.random.default_rng(2))
    seq = (np.random.default_rng(3).random((8, 2, 2, 8, 8)) > 0.6).astype(float)
    _compare(net, seq)


def test_recurrent_network_equivalence():
    spec = NetworkSpec(
        name="rec",
        input_shape=(16,),
        layers=(RecurrentSpec(out_features=12), RecurrentSpec(out_features=8), DenseSpec(out_features=4)),
        lif=LIFParameters(leak=0.85, refractory_steps=1),
    )
    net = build_network(spec, np.random.default_rng(4))
    seq = (np.random.default_rng(5).random((10, 1, 16)) > 0.4).astype(float)
    _compare(net, seq)


def test_gradients_reach_input_through_network():
    """Sanity: with surrogate gradients, d(loss)/d(input) is nonzero."""
    spec = NetworkSpec(
        name="grad",
        input_shape=(8,),
        layers=(DenseSpec(out_features=6), DenseSpec(out_features=3)),
        lif=LIFParameters(leak=0.9, refractory_steps=0),
    )
    net = build_network(spec, np.random.default_rng(6))
    seq = [Tensor(np.full((1, 8), 0.6), requires_grad=True) for _ in range(6)]
    record = net.forward(seq)
    loss = record.stacked_output().sum()
    loss.backward()
    total = sum(np.abs(s.grad).sum() for s in seq if s.grad is not None)
    assert total > 0.0


def test_gradients_reach_weights():
    spec = NetworkSpec(
        name="gradw",
        input_shape=(8,),
        layers=(DenseSpec(out_features=6), DenseSpec(out_features=3)),
        lif=LIFParameters(leak=0.9, refractory_steps=0),
    )
    net = build_network(spec, np.random.default_rng(7))
    seq = [Tensor((np.random.default_rng(8).random((2, 8)) > 0.4).astype(float)) for _ in range(6)]
    record = net.forward(seq)
    record.stacked_output().sum().backward()
    for param in net.parameters():
        assert param.grad is not None
