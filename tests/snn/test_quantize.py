"""Tests for int8 weight quantization."""

import numpy as np
import pytest

from repro.faults.bitflip import int8_scale
from repro.snn import DenseSpec, NetworkSpec, build_network
from repro.snn.quantize import is_quantized, quantize_network


def _net(seed=0):
    spec = NetworkSpec(
        name="q",
        input_shape=(8,),
        layers=(DenseSpec(out_features=6), DenseSpec(out_features=4)),
    )
    return build_network(spec, np.random.default_rng(seed))


class TestQuantize:
    def test_fresh_network_not_quantized(self):
        assert not is_quantized(_net())

    def test_quantize_makes_grid_exact(self):
        net = _net()
        report = quantize_network(net)
        assert is_quantized(net)
        assert len(report.scales) == 2

    def test_error_bounded_by_half_step(self):
        net = _net()
        scales_before = [int8_scale(p.data) for p in net.parameters()]
        report = quantize_network(net)
        assert report.max_abs_error <= max(scales_before) / 2 + 1e-12

    def test_idempotent(self):
        net = _net()
        quantize_network(net)
        before = [p.data.copy() for p in net.parameters()]
        report = quantize_network(net)
        for a, p in zip(before, net.parameters()):
            assert np.array_equal(a, p.data)
        assert report.max_abs_error == pytest.approx(0.0, abs=1e-12)

    def test_behaviour_approximately_preserved(self):
        net = _net()
        seq = (np.random.default_rng(1).random((10, 4, 8)) > 0.5).astype(float)
        before = net.run(seq)
        quantize_network(net)
        after = net.run(seq)
        # int8 has 255 levels: spike trains rarely change, and never much.
        disagreement = np.abs(before - after).mean()
        assert disagreement < 0.1

    def test_bitflip_lands_on_grid(self):
        """After quantization, a bit-flip fault moves the weight to another
        exactly-representable value (hardware-faithful)."""
        from repro.faults.injector import inject
        from repro.faults.model import FaultModelConfig, SynapseFault, SynapseFaultKind

        net = _net()
        quantize_network(net)
        weights = net.modules[0].weight.data
        scale = int8_scale(weights)
        fault = SynapseFault(0, 0, 5, SynapseFaultKind.BITFLIP, bit=4)
        with inject(net, fault, FaultModelConfig()):
            value = weights.reshape(-1)[5]
            code = value / scale
            assert np.isclose(code, round(code))

    def test_summary(self):
        net = _net()
        assert "int8" in quantize_network(net).summary()
