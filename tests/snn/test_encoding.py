"""Tests for spike encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.snn.encoding import poisson_encode, rate_encode, ttfs_encode


class TestRateEncode:
    def test_zero_intensity_silent(self):
        out = rate_encode(np.zeros((3,)), steps=10)
        assert out.sum() == 0

    def test_full_intensity_every_step(self):
        out = rate_encode(np.ones((3,)), steps=10)
        assert out.sum() == 30

    def test_spike_count_matches_rate(self):
        out = rate_encode(np.array([0.5]), steps=10)
        assert out.sum() == 5

    def test_spikes_spread_not_bunched(self):
        out = rate_encode(np.array([0.5]), steps=10)[:, 0]
        gaps = np.diff(np.nonzero(out)[0])
        assert gaps.max() <= 3  # evenly spread, not front-loaded

    def test_preserves_shape(self):
        out = rate_encode(np.full((2, 3), 0.4), steps=8)
        assert out.shape == (8, 2, 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            rate_encode(np.array([1.2]), steps=5)
        with pytest.raises(ConfigurationError):
            rate_encode(np.array([-0.1]), steps=5)

    def test_rejects_bad_steps(self):
        with pytest.raises(ConfigurationError):
            rate_encode(np.array([0.5]), steps=0)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_property_count_rounds_rate(self, p, steps):
        out = rate_encode(np.array([p]), steps=steps)
        assert out.sum() == round(p * steps)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_property_binary_output(self, p, steps):
        out = rate_encode(np.array([p]), steps=steps)
        assert set(np.unique(out)).issubset({0.0, 1.0})


class TestPoissonEncode:
    def test_statistics(self):
        rng = np.random.default_rng(0)
        out = poisson_encode(np.array([0.3]), steps=4000, rng=rng)
        assert abs(out.mean() - 0.3) < 0.03

    def test_deterministic_given_rng(self):
        a = poisson_encode(np.full((4,), 0.5), 20, np.random.default_rng(7))
        b = poisson_encode(np.full((4,), 0.5), 20, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_extremes(self):
        rng = np.random.default_rng(1)
        assert poisson_encode(np.zeros(5), 10, rng).sum() == 0


class TestTTFSEncode:
    def test_one_spike_per_active_channel(self):
        out = ttfs_encode(np.array([0.2, 0.9]), steps=10)
        assert np.allclose(out.sum(axis=0), [1.0, 1.0])

    def test_zero_channel_silent(self):
        out = ttfs_encode(np.array([0.0]), steps=10)
        assert out.sum() == 0

    def test_higher_intensity_fires_earlier(self):
        out = ttfs_encode(np.array([0.2, 0.9]), steps=20)
        t_low = np.nonzero(out[:, 0])[0][0]
        t_high = np.nonzero(out[:, 1])[0][0]
        assert t_high < t_low

    def test_max_intensity_fires_first_step(self):
        out = ttfs_encode(np.array([1.0]), steps=10)
        assert out[0, 0] == 1.0
