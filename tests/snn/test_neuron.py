"""LIF neuron dynamics tests: integration, leak, reset, refractoriness,
and behavioural fault overrides."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.neuron import (
    MODE_DEAD,
    MODE_NOMINAL,
    MODE_SATURATED,
    LIFParameters,
    LIFState,
    lif_step_numpy,
)


def _arrays(n, threshold=1.0, leak=1.0, refrac=0):
    return (
        np.full((n,), threshold),
        np.full((n,), leak),
        np.full((n,), refrac, dtype=np.int64),
    )


def _run(currents, threshold=1.0, leak=1.0, refrac=0, mode=None):
    """Drive a single neuron with a list of input currents; return spikes."""
    theta, lk, rf = _arrays(1, threshold, leak, refrac)
    state = LIFState.zeros_numpy((1, 1))
    spikes = []
    for c in currents:
        s = lif_step_numpy(np.array([[c]]), state, theta, lk, rf, mode)
        spikes.append(float(s[0, 0]))
    return spikes


class TestLIFParameters:
    def test_defaults_valid(self):
        LIFParameters()

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            LIFParameters(threshold=0.0)

    def test_rejects_bad_leak(self):
        with pytest.raises(ConfigurationError):
            LIFParameters(leak=0.0)
        with pytest.raises(ConfigurationError):
            LIFParameters(leak=1.5)

    def test_rejects_negative_refractory(self):
        with pytest.raises(ConfigurationError):
            LIFParameters(refractory_steps=-1)

    def test_rejects_unknown_surrogate(self):
        with pytest.raises(ConfigurationError):
            LIFParameters(surrogate="bogus")

    def test_frozen(self):
        p = LIFParameters()
        with pytest.raises(Exception):
            p.threshold = 2.0


class TestIntegration:
    def test_subthreshold_no_spike(self):
        assert _run([0.5], threshold=1.0) == [0.0]

    def test_threshold_crossing_fires(self):
        assert _run([1.0], threshold=1.0) == [1.0]

    def test_accumulation_without_leak(self):
        # 0.4 per step, threshold 1.0 -> fires on step 3 (0.4, 0.8, 1.2)
        assert _run([0.4, 0.4, 0.4], leak=1.0) == [0.0, 0.0, 1.0]

    def test_leak_slows_accumulation(self):
        # With strong leak the same drive never reaches threshold:
        # u converges to 0.4 / (1 - 0.5) = 0.8 < 1.0
        assert _run([0.4] * 10, leak=0.5) == [0.0] * 10

    def test_reset_after_spike(self):
        # After firing, potential resets to zero: needs to re-accumulate.
        spikes = _run([0.6, 0.6, 0.6, 0.6], leak=1.0)
        assert spikes == [0.0, 1.0, 0.0, 1.0]

    def test_negative_current_inhibits(self):
        spikes = _run([0.6, -0.6, 0.6, 0.6], leak=1.0)
        # 0.6, 0.0, 0.6, 1.2 -> spike only on the last step
        assert spikes == [0.0, 0.0, 0.0, 1.0]


class TestRefractoriness:
    def test_refractory_blocks_firing(self):
        # Strong drive every step; refractory 2 forces a 2-step gap.
        spikes = _run([2.0] * 6, refrac=2)
        assert spikes == [1.0, 0.0, 0.0, 1.0, 0.0, 0.0]

    def test_refractory_blocks_integration(self):
        # Input arriving during refractory must be dropped, not buffered.
        spikes = _run([2.0, 0.6, 0.6, 0.0], refrac=2, leak=1.0)
        # Steps 2-3 are refractory; step 4 input is 0 -> no second spike.
        assert spikes == [1.0, 0.0, 0.0, 0.0]

    def test_zero_refractory_allows_back_to_back(self):
        assert _run([2.0, 2.0, 2.0], refrac=0) == [1.0, 1.0, 1.0]


class TestBehaviouralModes:
    def test_dead_never_fires(self):
        mode = np.array([MODE_DEAD], dtype=np.int8)
        assert _run([5.0] * 4, mode=mode) == [0.0] * 4

    def test_saturated_always_fires(self):
        mode = np.array([MODE_SATURATED], dtype=np.int8)
        assert _run([0.0] * 4, mode=mode) == [1.0] * 4

    def test_saturated_overrides_refractory(self):
        mode = np.array([MODE_SATURATED], dtype=np.int8)
        assert _run([0.0] * 4, refrac=3, mode=mode) == [1.0] * 4

    def test_nominal_mode_is_transparent(self):
        mode = np.array([MODE_NOMINAL], dtype=np.int8)
        assert _run([1.0, 1.0], mode=mode) == _run([1.0, 1.0])

    def test_mode_applies_per_neuron(self):
        theta, lk, rf = _arrays(3)
        mode = np.array([MODE_NOMINAL, MODE_DEAD, MODE_SATURATED], dtype=np.int8)
        state = LIFState.zeros_numpy((1, 3))
        s = lif_step_numpy(np.array([[2.0, 2.0, 0.0]]), state, theta, lk, rf, mode)
        assert s.tolist() == [[1.0, 0.0, 1.0]]


class TestState:
    def test_zeros_numpy_shapes(self):
        state = LIFState.zeros_numpy((2, 5))
        assert state.potential.shape == (2, 5)
        assert state.refractory.dtype == np.int64

    def test_zeros_tensor_shapes(self):
        state = LIFState.zeros_tensor((2, 5))
        assert state.potential.shape == (2, 5)
        assert state.last_spike.shape == (2, 5)
