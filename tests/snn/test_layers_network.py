"""Tests for layer modules and the SNN container."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.snn.layers import ConvLIF, DenseLIF, Flatten, RecurrentLIF, SumPool
from repro.snn.network import SNN
from repro.snn.neuron import LIFParameters
from repro.snn.builder import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)

PARAMS = LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _small_conv_net(seed=0):
    spec = NetworkSpec(
        name="tiny",
        input_shape=(2, 8, 8),
        layers=(
            ConvSpec(out_channels=4, kernel=3, padding=1),
            PoolSpec(window=2),
            ConvSpec(out_channels=6, kernel=3, padding=1),
            PoolSpec(window=2),
            FlattenSpec(),
            DenseSpec(out_features=16),
            DenseSpec(out_features=5),
        ),
        lif=PARAMS,
    )
    return build_network(spec, _rng(seed))


class TestDenseLIF:
    def test_output_shape(self):
        layer = DenseLIF(10, 4, PARAMS, rng=_rng())
        seq = (np.random.default_rng(1).random((6, 2, 10)) > 0.5).astype(float)
        out = layer.run_sequence_numpy(seq)
        assert out.shape == (6, 2, 4)

    def test_outputs_binary(self):
        layer = DenseLIF(10, 4, PARAMS, rng=_rng())
        seq = np.ones((8, 1, 10))
        out = layer.run_sequence_numpy(seq)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_counts(self):
        layer = DenseLIF(10, 4, PARAMS)
        assert layer.neuron_count == 4
        assert layer.synapse_count == 40

    def test_shape_validation(self):
        layer = DenseLIF(10, 4, PARAMS)
        with pytest.raises(ShapeError):
            layer.output_shape((9,))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            DenseLIF(0, 4, PARAMS)


class TestRecurrentLIF:
    def test_output_shape(self):
        layer = RecurrentLIF(6, 5, PARAMS, rng=_rng())
        seq = np.zeros((4, 3, 6))
        assert layer.run_sequence_numpy(seq).shape == (4, 3, 5)

    def test_counts_include_recurrent(self):
        layer = RecurrentLIF(6, 5, PARAMS)
        assert layer.synapse_count == 6 * 5 + 25

    def test_recurrence_feeds_back(self):
        # Strong positive recurrence: once a neuron fires, feedback drives
        # more firing even with zero external input afterwards.
        layer = RecurrentLIF(1, 1, LIFParameters(leak=1.0, refractory_steps=0), rng=_rng())
        layer.weight.data[...] = 2.0
        layer.recurrent_weight.data[...] = 2.0
        seq = np.zeros((5, 1, 1))
        seq[0] = 1.0
        out = layer.run_sequence_numpy(seq)
        assert out[0, 0, 0] == 1.0  # driven by input
        assert out[1:, 0, 0].sum() > 0  # sustained by recurrence

    def test_two_parameters(self):
        assert len(RecurrentLIF(3, 3, PARAMS).parameters()) == 2


class TestConvLIF:
    def test_output_geometry(self):
        layer = ConvLIF(2, 4, (8, 8), kernel=3, params=PARAMS, stride=2, padding=1)
        assert layer.neuron_shape == (4, 4, 4)

    def test_run_shapes(self):
        layer = ConvLIF(2, 3, (6, 6), kernel=3, params=PARAMS, padding=1, rng=_rng())
        seq = (np.random.default_rng(2).random((5, 2, 2, 6, 6)) > 0.7).astype(float)
        assert layer.run_sequence_numpy(seq).shape == (5, 2, 3, 6, 6)

    def test_synapse_count_is_kernel_entries(self):
        layer = ConvLIF(2, 4, (8, 8), kernel=3, params=PARAMS)
        assert layer.synapse_count == 4 * 2 * 9

    def test_conv_numpy_matches_functional(self):
        from repro.autograd import functional as F
        from repro.autograd.tensor import Tensor

        layer = ConvLIF(2, 3, (6, 6), kernel=3, params=PARAMS, stride=1, padding=1, rng=_rng(5))
        x = np.random.default_rng(3).random((2, 2, 6, 6))
        expected = F.conv2d(Tensor(x), Tensor(layer.weight.data), stride=1, padding=1).data
        assert np.allclose(layer._conv_numpy(x), expected)

    def test_rejects_empty_output(self):
        with pytest.raises(ConfigurationError):
            ConvLIF(1, 1, (2, 2), kernel=5, params=PARAMS)


class TestPoolFlatten:
    def test_pool_sums(self):
        pool = SumPool(2)
        seq = np.ones((1, 1, 1, 4, 4))
        out = pool.run_sequence_numpy(seq)
        assert np.allclose(out, 4.0)

    def test_pool_has_no_neurons(self):
        assert SumPool(2).neuron_count == 0
        assert SumPool(2).synapse_count == 0

    def test_pool_shape_validation(self):
        with pytest.raises(ShapeError):
            SumPool(2).output_shape((3, 5, 5))

    def test_flatten_round_trip(self):
        flat = Flatten()
        seq = np.arange(2 * 1 * 3 * 2 * 2, dtype=float).reshape(2, 1, 3, 2, 2)
        out = flat.run_sequence_numpy(seq)
        assert out.shape == (2, 1, 12)
        assert np.allclose(out[0, 0], seq[0, 0].reshape(-1))


class TestSNNContainer:
    def test_counts_aggregate(self):
        net = _small_conv_net()
        expected_neurons = 4 * 8 * 8 + 6 * 4 * 4 + 16 + 5
        assert net.neuron_count == expected_neurons
        assert net.num_classes == 5
        assert net.num_layers == 4

    def test_run_output_shape(self):
        net = _small_conv_net()
        seq = (np.random.default_rng(0).random((6, 2, 2, 8, 8)) > 0.6).astype(float)
        out = net.run(seq)
        assert out.shape == (6, 2, 5)

    def test_run_modules_chains(self):
        net = _small_conv_net()
        seq = (np.random.default_rng(0).random((4, 1, 2, 8, 8)) > 0.6).astype(float)
        outputs = net.run_modules(seq)
        assert len(outputs) == len(net.modules)
        final = outputs[-1].reshape(4, 1, -1)
        assert np.allclose(final, net.run(seq))

    def test_run_from_matches_full_run(self):
        net = _small_conv_net()
        seq = (np.random.default_rng(1).random((4, 1, 2, 8, 8)) > 0.6).astype(float)
        outputs = net.run_modules(seq)
        for start in range(1, len(net.modules)):
            resumed = net.run_from(start, outputs[start - 1])
            assert np.allclose(resumed, net.run(seq)), f"mismatch from module {start}"

    def test_run_from_bad_index(self):
        net = _small_conv_net()
        with pytest.raises(ConfigurationError):
            net.run_from(99, np.zeros((1, 1, 5)))

    def test_run_spiking_layers_flat(self):
        net = _small_conv_net()
        seq = (np.random.default_rng(2).random((3, 1, 2, 8, 8)) > 0.6).astype(float)
        records = net.run_spiking_layers(seq)
        assert len(records) == net.num_layers
        assert records[0].shape == (3, 1, 4 * 8 * 8)
        assert records[-1].shape == (3, 1, 5)

    def test_predict_shape(self):
        net = _small_conv_net()
        seq = (np.random.default_rng(3).random((4, 3, 2, 8, 8)) > 0.5).astype(float)
        preds = net.predict(seq)
        assert preds.shape == (3,)
        assert np.all((preds >= 0) & (preds < 5))

    def test_input_shape_validation(self):
        net = _small_conv_net()
        with pytest.raises(ShapeError):
            net.run(np.zeros((4, 1, 2, 9, 9)))

    def test_last_module_must_spike(self):
        with pytest.raises(ConfigurationError):
            SNN([Flatten()], input_shape=(2, 2, 2))

    def test_state_dict_round_trip(self, tmp_path):
        net_a = _small_conv_net(seed=0)
        net_b = _small_conv_net(seed=99)
        path = str(tmp_path / "weights.npz")
        net_a.save(path)
        net_b.load(path)
        seq = (np.random.default_rng(5).random((4, 1, 2, 8, 8)) > 0.5).astype(float)
        assert np.allclose(net_a.run(seq), net_b.run(seq))

    def test_load_rejects_missing_keys(self):
        net = _small_conv_net()
        with pytest.raises(ConfigurationError):
            net.load_state_dict({})

    def test_load_rejects_bad_shape(self):
        net = _small_conv_net()
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_describe_mentions_totals(self):
        text = _small_conv_net().describe()
        assert "total neurons" in text


class TestBuilder:
    def test_recurrent_spec(self):
        spec = NetworkSpec(
            name="shd-like",
            input_shape=(20,),
            layers=(RecurrentSpec(out_features=12), DenseSpec(out_features=4)),
        )
        net = build_network(spec, _rng())
        assert net.num_classes == 4
        assert isinstance(net.modules[0], RecurrentLIF)

    def test_same_seed_same_weights(self):
        a, b = _small_conv_net(7), _small_conv_net(7)
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a, b = _small_conv_net(7), _small_conv_net(8)
        assert not all(
            np.allclose(pa.data, pb.data) for pa, pb in zip(a.parameters(), b.parameters())
        )

    def test_dense_needs_flat_input(self):
        spec = NetworkSpec(
            name="bad", input_shape=(2, 4, 4), layers=(DenseSpec(out_features=3),)
        )
        with pytest.raises(ConfigurationError):
            build_network(spec, _rng())

    def test_conv_needs_chw_input(self):
        spec = NetworkSpec(
            name="bad", input_shape=(16,), layers=(ConvSpec(out_channels=2, kernel=3),)
        )
        with pytest.raises(ConfigurationError):
            build_network(spec, _rng())

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(name="empty", input_shape=(4,), layers=())
