"""Tests for the surrogate-gradient trainer: losses decrease, accuracy
beats chance, configuration errors are caught."""

import numpy as np
import pytest

from repro.autograd.schedule import StepDecay
from repro.autograd.tensor import Tensor
from repro.datasets import SHDLike
from repro.errors import TrainingError
from repro.snn import DenseSpec, NetworkSpec, RecurrentSpec, build_network, LIFParameters
from repro.training import Trainer, accuracy, spike_count_logits, spike_count_loss


@pytest.fixture(scope="module")
def tiny_shd():
    return SHDLike(train_size=80, test_size=40, channels=32, steps=20, seed=0)


def _net(tiny_shd, seed=0, hidden=32):
    spec = NetworkSpec(
        name="t",
        input_shape=tiny_shd.input_shape,
        layers=(DenseSpec(out_features=hidden), DenseSpec(out_features=tiny_shd.num_classes)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


class TestLoss:
    def test_logits_shape(self, tiny_shd):
        net = _net(tiny_shd)
        inputs, labels = tiny_shd.subset(4, "train")
        seq = [Tensor(inputs[t]) for t in range(inputs.shape[0])]
        record = net.forward(seq)
        logits = spike_count_logits(record)
        assert logits.shape == (4, 20)

    def test_loss_scalar_and_finite(self, tiny_shd):
        net = _net(tiny_shd)
        inputs, labels = tiny_shd.subset(4, "train")
        seq = [Tensor(inputs[t]) for t in range(inputs.shape[0])]
        record = net.forward(seq)
        loss = spike_count_loss(record, labels, rate_weight=0.1, target_rate=0.1)
        assert np.isfinite(loss.item())

    def test_rate_regulariser_increases_loss_for_silent_net(self, tiny_shd):
        net = _net(tiny_shd)
        # Silence the network by zeroing weights: rate deviates from target.
        for p in net.parameters():
            p.data[...] = 0.0
        inputs, labels = tiny_shd.subset(4, "train")
        seq = [Tensor(inputs[t]) for t in range(inputs.shape[0])]
        record = net.forward(seq)
        base = spike_count_loss(record, labels, rate_weight=0.0)
        reg = spike_count_loss(record, labels, rate_weight=1.0, target_rate=0.2)
        assert reg.item() > base.item()


class TestTrainer:
    def test_loss_decreases(self, tiny_shd):
        net = _net(tiny_shd)
        trainer = Trainer(net, tiny_shd, lr=0.02, batch_size=16)
        result = trainer.fit(epochs=4, rng=np.random.default_rng(0))
        assert result.loss_history[-1] < result.loss_history[0]

    def test_learns_above_chance(self, tiny_shd):
        net = _net(tiny_shd)
        trainer = Trainer(net, tiny_shd, lr=0.02, batch_size=16)
        result = trainer.fit(epochs=6, rng=np.random.default_rng(0))
        chance = 1.0 / tiny_shd.num_classes
        assert result.train_accuracy > 3 * chance
        assert result.test_accuracy > 2 * chance

    def test_lr_schedule_applied(self, tiny_shd):
        net = _net(tiny_shd)
        trainer = Trainer(
            net, tiny_shd, lr=0.05, batch_size=32, lr_schedule=StepDecay(0.05, 0.1, 1)
        )
        trainer.fit(epochs=2, rng=np.random.default_rng(0))
        assert np.isclose(trainer.optimizer.lr, 0.005)

    def test_grad_clip_bounds_norm(self, tiny_shd):
        net = _net(tiny_shd)
        trainer = Trainer(net, tiny_shd, lr=0.02, batch_size=8, grad_clip=0.001)
        inputs, labels = tiny_shd.subset(8, "train")
        seq = [Tensor(inputs[t]) for t in range(inputs.shape[0])]
        record = net.forward(seq)
        loss = spike_count_loss(record, labels)
        trainer.optimizer.zero_grad()
        loss.backward()
        trainer._clip_gradients()
        total = sum(float((p.grad**2).sum()) for p in net.parameters() if p.grad is not None)
        assert np.sqrt(total) <= 0.001 + 1e-9

    def test_log_callback(self, tiny_shd):
        net = _net(tiny_shd)
        messages = []
        Trainer(net, tiny_shd, lr=0.02, batch_size=32).fit(
            epochs=1, rng=np.random.default_rng(0), log=messages.append
        )
        assert len(messages) == 1

    def test_rejects_mismatched_shapes(self, tiny_shd):
        spec = NetworkSpec(
            name="bad", input_shape=(16,), layers=(DenseSpec(out_features=20),)
        )
        net = build_network(spec, np.random.default_rng(0))
        with pytest.raises(TrainingError):
            Trainer(net, tiny_shd)

    def test_rejects_mismatched_classes(self, tiny_shd):
        spec = NetworkSpec(
            name="bad", input_shape=(32,), layers=(DenseSpec(out_features=7),)
        )
        net = build_network(spec, np.random.default_rng(0))
        with pytest.raises(TrainingError):
            Trainer(net, tiny_shd)

    def test_rejects_zero_epochs(self, tiny_shd):
        net = _net(tiny_shd)
        with pytest.raises(TrainingError):
            Trainer(net, tiny_shd).fit(epochs=0, rng=np.random.default_rng(0))

    def test_recurrent_network_trains(self, tiny_shd):
        spec = NetworkSpec(
            name="rec",
            input_shape=tiny_shd.input_shape,
            layers=(RecurrentSpec(out_features=24), DenseSpec(out_features=20)),
        )
        net = build_network(spec, np.random.default_rng(0))
        trainer = Trainer(net, tiny_shd, lr=0.02, batch_size=16)
        result = trainer.fit(epochs=3, rng=np.random.default_rng(0))
        assert result.loss_history[-1] < result.loss_history[0]


class TestAccuracy:
    def test_accuracy_range(self, tiny_shd):
        net = _net(tiny_shd)
        acc = accuracy(net, tiny_shd.test_inputs.astype(float), tiny_shd.test_labels)
        assert 0.0 <= acc <= 1.0

    def test_accuracy_batched_consistent(self, tiny_shd):
        net = _net(tiny_shd)
        inputs = tiny_shd.test_inputs.astype(float)
        a = accuracy(net, inputs, tiny_shd.test_labels, batch_size=7)
        b = accuracy(net, inputs, tiny_shd.test_labels, batch_size=40)
        assert a == b
