"""Report-generation tests on a tiny cached pipeline (single benchmark)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentPipeline,
    ablation_report,
    fig7_report,
    fig8_report,
    fig9_report,
    get_benchmark,
    table3_report,
    table4_report,
)


@pytest.fixture(scope="module")
def shd_pipeline(tmp_path_factory):
    results = tmp_path_factory.mktemp("reports")
    return ExperimentPipeline(get_benchmark("shd", "tiny"), results_dir=results, seed=0)


class TestReportsTiny:
    def test_table3_single_benchmark(self, shd_pipeline):
        text, payload = table3_report({"shd": shd_pipeline})
        assert "Table III" in text
        stats = payload["shd"]
        assert 0.0 <= stats["activated_fraction"] <= 1.0
        assert stats["duration_steps"] > 0
        assert stats["runtime_s"] > 0

    def test_table4_runs_baselines(self, shd_pipeline):
        text, payload = table4_report(shd_pipeline, baseline_pool=4)
        assert "This work" in text
        for key in ("greedy_dataset[18]", "adversarial[17,19]", "random[20]"):
            assert key in payload
            assert payload[key]["fault_simulations"] > 0

    def test_fig_reports(self, shd_pipeline):
        text7, payload7 = fig7_report(shd_pipeline)
        assert payload7["total_steps"] > 0
        text8, payload8 = fig8_report(shd_pipeline)
        assert 0.0 <= payload8["optimized_fraction"] <= 1.0
        text9, payload9 = fig9_report(shd_pipeline)
        assert payload9["detected_faults"] >= 0

    def test_ablation_single_variant(self, shd_pipeline):
        text, payload = ablation_report(
            shd_pipeline, variants=[("full", ())], fault_fraction=0.3
        )
        assert "full" in payload
        assert 0.0 <= payload["full"]["detection_rate"] <= 1.0
