"""Tests for benchmark definitions, the cached pipeline, and reports.

Pipeline tests run at tiny scale into a temp results dir; caching
behaviour is validated by re-instantiating pipelines.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    BENCHMARK_NAMES,
    ExperimentPipeline,
    get_benchmark,
    save_report,
    table1_report,
    table2_report,
)


class TestDefinitions:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("scale", ("tiny", "small", "full"))
    def test_all_definitions_construct(self, name, scale):
        definition = get_benchmark(name, scale)
        assert definition.name == name
        assert definition.scale == scale
        assert definition.cache_key == f"{name}-{scale}"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("mnist")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_benchmark("nmnist", "huge")

    def test_dataset_matches_spec(self):
        for name in BENCHMARK_NAMES:
            definition = get_benchmark(name, "tiny")
            dataset = definition.make_dataset()
            assert tuple(dataset.input_shape) == tuple(definition.spec.input_shape)

    def test_full_scale_samples_more_faults(self):
        small = get_benchmark("nmnist", "small")
        full = get_benchmark("nmnist", "full")
        assert (
            full.fault_config.synapse_sample_fraction
            >= small.fault_config.synapse_sample_fraction
        )


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    results = tmp_path_factory.mktemp("results")
    return ExperimentPipeline(get_benchmark("shd", "tiny"), results_dir=results, seed=0)


class TestPipeline:
    def test_network_trained_and_cached(self, pipeline):
        network = pipeline.network()
        assert (pipeline.cache_dir / "weights.npz").exists()
        assert (pipeline.cache_dir / "training.json").exists()
        # Second pipeline instance loads from cache, identical weights.
        clone = ExperimentPipeline(
            pipeline.definition, results_dir=pipeline.results_dir, seed=0
        )
        reloaded = clone.network()
        for a, b in zip(network.parameters(), reloaded.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_classification_cached(self, pipeline):
        first = pipeline.classification()
        assert (pipeline.cache_dir / "classification.npz").exists()
        clone = ExperimentPipeline(
            pipeline.definition, results_dir=pipeline.results_dir, seed=0
        )
        second = clone.classification()
        assert np.array_equal(first.critical, second.critical)

    def test_generation_cached(self, pipeline):
        first = pipeline.generation()
        clone = ExperimentPipeline(
            pipeline.definition, results_dir=pipeline.results_dir, seed=0
        )
        second = clone.generation()
        assert first.stimulus.duration_steps == second.stimulus.duration_steps
        assert first.runtime_s == second.runtime_s  # honest first-run time kept
        for a, b in zip(first.activated_per_layer, second.activated_per_layer):
            assert np.array_equal(a, b)

    def test_detection_and_coverage(self, pipeline):
        detection = pipeline.detection()
        assert detection.detected.shape[0] == len(pipeline.catalog())
        coverage = pipeline.coverage()
        assert 0.0 <= coverage.fc_overall <= 1.0
        assert not np.isnan(coverage.max_drop_undetected_neuron)

    def test_different_seed_different_cache(self, pipeline):
        other = ExperimentPipeline(
            pipeline.definition, results_dir=pipeline.results_dir, seed=1
        )
        assert other.cache_dir != pipeline.cache_dir


class TestReports:
    def test_table_reports_render(self, pipeline):
        pipelines = {"shd": pipeline}
        text1, payload1 = table1_report(pipelines)
        assert "Table I" in text1 and "shd" in payload1
        text2, payload2 = table2_report(pipelines)
        assert "Table II" in text2
        total = sum(
            payload2["shd"][k]
            for k in ("critical_neuron", "benign_neuron", "critical_synapse", "benign_synapse")
        )
        assert total == len(pipeline.catalog())

    def test_save_report(self, pipeline, tmp_path):
        save_report(tmp_path, "demo", "hello", {"x": 1.5})
        assert (tmp_path / "demo.txt").read_text() == "hello\n"
        with open(tmp_path / "demo.json") as fh:
            assert json.load(fh) == {"x": 1.5}
