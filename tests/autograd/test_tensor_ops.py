"""Gradient and semantics tests for the core Tensor ops."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, concatenate, no_grad, stack, where
from repro.errors import GradientError, ShapeError
from repro.utils.gradcheck import gradcheck


def _t(shape, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(scale=scale, size=shape), requires_grad=True)


class TestArithmetic:
    def test_add(self):
        gradcheck(lambda a, b: a + b, [_t((3, 4), 0), _t((3, 4), 1)])

    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, [_t((3, 4), 0), _t((4,), 1)])

    def test_add_scalar(self):
        a = _t((2, 3), 0)
        out = a + 2.5
        assert np.allclose(out.data, a.data + 2.5)
        gradcheck(lambda a: a + 2.5, [a])

    def test_radd(self):
        gradcheck(lambda a: 1.5 + a, [_t((3,), 0)])

    def test_sub(self):
        gradcheck(lambda a, b: a - b, [_t((2, 2), 0), _t((2, 2), 1)])

    def test_rsub(self):
        gradcheck(lambda a: 3.0 - a, [_t((4,), 2)])

    def test_mul(self):
        gradcheck(lambda a, b: a * b, [_t((3, 4), 0), _t((3, 4), 1)])

    def test_mul_broadcast_column(self):
        gradcheck(lambda a, b: a * b, [_t((3, 4), 0), _t((3, 1), 1)])

    def test_div(self):
        a, b = _t((3,), 0), _t((3,), 1)
        b.data = np.abs(b.data) + 1.0
        gradcheck(lambda a, b: a / b, [a, b])

    def test_rdiv(self):
        a = _t((3,), 0)
        a.data = np.abs(a.data) + 1.0
        gradcheck(lambda a: 2.0 / a, [a])

    def test_neg(self):
        gradcheck(lambda a: -a, [_t((5,), 3)])

    def test_pow(self):
        a = _t((4,), 0)
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda a: a ** 3, [a])

    def test_pow_rejects_array_exponent(self):
        with pytest.raises(ShapeError):
            _t((2,), 0) ** np.array([1.0, 2.0])


class TestMatmul:
    def test_2d_2d(self):
        gradcheck(lambda a, b: a @ b, [_t((3, 4), 0), _t((4, 5), 1)])

    def test_2d_1d(self):
        gradcheck(lambda a, b: a @ b, [_t((3, 4), 0), _t((4,), 1)])

    def test_1d_2d(self):
        gradcheck(lambda a, b: a @ b, [_t((4,), 0), _t((4, 3), 1)])

    def test_batched(self):
        gradcheck(lambda a, b: a @ b, [_t((2, 3, 4), 0), _t((2, 4, 5), 1)])

    def test_values(self):
        a, b = _t((2, 3), 0), _t((3, 2), 1)
        assert np.allclose((a @ b).data, a.data @ b.data)


class TestReductions:
    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), [_t((3, 4), 0)])

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=1), [_t((3, 4), 0)])

    def test_sum_axis_keepdims(self):
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), [_t((3, 4), 0)])

    def test_sum_negative_axis(self):
        gradcheck(lambda a: a.sum(axis=-1), [_t((2, 3, 4), 0)])

    def test_sum_multiple_axes(self):
        gradcheck(lambda a: a.sum(axis=(0, 2)), [_t((2, 3, 4), 0)])

    def test_mean(self):
        gradcheck(lambda a: a.mean(), [_t((3, 4), 0)])

    def test_mean_axis(self):
        gradcheck(lambda a: a.mean(axis=1), [_t((3, 4), 0)])

    def test_mean_value(self):
        a = _t((6,), 0)
        assert np.isclose(a.mean().item(), a.data.mean())

    def test_var(self):
        gradcheck(lambda a: a.var(), [_t((8,), 0)])

    def test_var_axis(self):
        gradcheck(lambda a: a.var(axis=0), [_t((5, 3), 0)])

    def test_var_matches_numpy(self):
        a = _t((7,), 1)
        assert np.isclose(a.var().item(), a.data.var())

    def test_max_all(self):
        gradcheck(lambda a: a.max(), [_t((4, 4), 0)])

    def test_max_axis(self):
        gradcheck(lambda a: a.max(axis=1), [_t((3, 5), 2)])


class TestElementwise:
    def test_exp(self):
        gradcheck(lambda a: a.exp(), [_t((4,), 0)])

    def test_log(self):
        a = _t((4,), 0)
        a.data = np.abs(a.data) + 0.5
        gradcheck(lambda a: a.log(), [a])

    def test_sigmoid(self):
        gradcheck(lambda a: a.sigmoid(), [_t((6,), 0)])

    def test_tanh(self):
        gradcheck(lambda a: a.tanh(), [_t((6,), 1)])

    def test_abs(self):
        a = _t((5,), 0)
        a.data += np.sign(a.data) * 0.1  # keep away from the kink
        gradcheck(lambda a: a.abs(), [a])

    def test_relu(self):
        a = _t((6,), 0)
        a.data += np.sign(a.data) * 0.1
        gradcheck(lambda a: a.relu(), [a])

    def test_clip(self):
        a = Tensor(np.array([-2.0, -0.5, 0.3, 0.9, 2.0]), requires_grad=True)
        gradcheck(lambda a: a.clip(-1.0, 1.0), [a])

    def test_maximum(self):
        a, b = _t((5,), 0), _t((5,), 1)
        gradcheck(lambda a, b: a.maximum(b), [a, b])

    def test_maximum_scalar(self):
        a = _t((5,), 0)
        gradcheck(lambda a: a.maximum(0.0), [a])

    def test_minimum(self):
        a, b = _t((5,), 2), _t((5,), 3)
        gradcheck(lambda a, b: a.minimum(b), [a, b])


class TestShapes:
    def test_reshape(self):
        gradcheck(lambda a: a.reshape(2, 6), [_t((3, 4), 0)])

    def test_reshape_tuple(self):
        gradcheck(lambda a: a.reshape((4, 3)), [_t((3, 4), 0)])

    def test_transpose_default(self):
        gradcheck(lambda a: a.transpose(), [_t((3, 4), 0)])

    def test_transpose_axes(self):
        gradcheck(lambda a: a.transpose(2, 0, 1), [_t((2, 3, 4), 0)])

    def test_getitem_int(self):
        gradcheck(lambda a: a[1], [_t((3, 4), 0)])

    def test_getitem_slice(self):
        gradcheck(lambda a: a[1:3], [_t((5, 2), 0)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        gradcheck(lambda a: a[idx], [_t((4, 3), 0)])

    def test_getitem_fancy_duplicate_accumulates(self):
        a = _t((3,), 0)
        out = a[np.array([1, 1])].sum()
        out.backward()
        assert np.allclose(a.grad, [0.0, 2.0, 0.0])

    def test_pad2d(self):
        gradcheck(lambda a: a.pad2d(2), [_t((1, 2, 3, 3), 0)])

    def test_pad2d_zero_noop(self):
        a = _t((1, 1, 2, 2), 0)
        assert a.pad2d(0) is a


class TestCombinators:
    def test_stack(self):
        a, b = _t((3,), 0), _t((3,), 1)
        gradcheck(lambda a, b: stack([a, b], axis=0), [a, b])

    def test_stack_axis1(self):
        a, b = _t((3,), 0), _t((3,), 1)
        gradcheck(lambda a, b: stack([a, b], axis=1), [a, b])

    def test_concatenate(self):
        a, b = _t((2, 3), 0), _t((4, 3), 1)
        gradcheck(lambda a, b: concatenate([a, b], axis=0), [a, b])

    def test_concatenate_axis1(self):
        a, b = _t((3, 2), 0), _t((3, 5), 1)
        gradcheck(lambda a, b: concatenate([a, b], axis=1), [a, b])

    def test_where(self):
        cond = np.array([True, False, True, False])
        a, b = _t((4,), 0), _t((4,), 1)
        gradcheck(lambda a, b: where(cond, a, b), [a, b])


class TestBackwardSemantics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # d/da = 2a + 1 = 5
        out.sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_backward_requires_grad(self):
        a = Tensor(np.ones(3))
        with pytest.raises(GradientError):
            a.sum().backward()

    def test_backward_nonscalar_needs_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradientError):
            (a * 2).backward()

    def test_backward_with_seed(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(a.grad, [2.0, 4.0, 6.0])

    def test_seed_shape_mismatch(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (a * 2).backward(np.ones(4))

    def test_no_grad_suppresses_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 3
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a.detach() * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # y = (a + a) * (a * a): checks topological ordering on shared nodes
        a = Tensor(np.array([3.0]), requires_grad=True)
        y = (a + a) * (a * a)  # 2a^3, dy/da = 6a^2 = 54
        y.sum().backward()
        assert np.allclose(a.grad, [54.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 0.001
        out.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_item_scalar(self):
        assert Tensor(np.array([7.0])).item() == 7.0

    def test_item_nonscalar_raises(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).item()

    def test_comparisons_return_numpy(self):
        a = Tensor(np.array([1.0, -1.0]))
        assert isinstance(a > 0, np.ndarray)
        assert (a > 0).tolist() == [True, False]
        assert (a < 0).tolist() == [False, True]
        assert (a >= 1.0).tolist() == [True, False]
        assert (a <= -1.0).tolist() == [False, True]

    def test_repr(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        assert "2, 2" in repr(a)
