"""Tests for NN functional ops: spike surrogate, Gumbel-Softmax, STE, conv."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.autograd import functional as F
from repro.errors import ConfigurationError, ShapeError
from repro.utils.gradcheck import gradcheck


def _t(shape, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(scale=scale, size=shape), requires_grad=True)


class TestSpike:
    def test_forward_is_heaviside(self):
        x = Tensor(np.array([-1.0, -0.001, 0.0, 0.3, 2.0]))
        out = F.spike(x)
        assert out.data.tolist() == [0.0, 0.0, 1.0, 1.0, 1.0]

    @pytest.mark.parametrize("kind", F.SURROGATES)
    def test_backward_uses_surrogate(self, kind):
        x = Tensor(np.array([-0.5, 0.0, 0.5]), requires_grad=True)
        F.spike(x, surrogate=kind).sum().backward()
        from repro.autograd.functional import _surrogate_derivative

        expected = _surrogate_derivative(x.data, kind, 5.0)
        assert np.allclose(x.grad, expected)

    def test_surrogate_peaks_at_threshold(self):
        from repro.autograd.functional import _surrogate_derivative

        xs = np.linspace(-2, 2, 101)
        for kind in F.SURROGATES:
            d = _surrogate_derivative(xs, kind, 5.0)
            assert np.argmax(d) == 50  # x == 0

    def test_unknown_surrogate(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ConfigurationError):
            F.spike(x, surrogate="nope")

    def test_output_binary(self):
        x = _t((100,), 0)
        out = F.spike(x)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})


class TestGumbelSoftmax:
    def test_output_in_unit_interval(self):
        rng = np.random.default_rng(0)
        logits = _t((50,), 1)
        out = F.gumbel_softmax(logits, tau=0.5, rng=rng)
        assert np.all(out.data > 0.0) and np.all(out.data < 1.0)

    def test_low_tau_sharpens(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        logits = _t((200,), 2, scale=2.0)
        soft = F.gumbel_softmax(logits, tau=1.0, rng=rng_a)
        sharp = F.gumbel_softmax(logits, tau=0.05, rng=rng_b)
        # Sharper temperature pushes values towards {0, 1}.
        dist_soft = np.minimum(soft.data, 1 - soft.data).mean()
        dist_sharp = np.minimum(sharp.data, 1 - sharp.data).mean()
        assert dist_sharp < dist_soft

    def test_deterministic_without_noise(self):
        logits = Tensor(np.array([2.0, -2.0]), requires_grad=True)
        out = F.gumbel_softmax(logits, tau=1.0, rng=np.random.default_rng(0), noise_scale=0.0)
        expected = 1.0 / (1.0 + np.exp(-logits.data))
        assert np.allclose(out.data, expected)

    def test_gradients_flow(self):
        logits = _t((10,), 4)
        rng_state = np.random.default_rng(7)
        noise = rng_state.logistic(size=10)

        class FrozenRng:
            def logistic(self, loc=0.0, scale=1.0, size=None):
                return noise

        gradcheck(lambda l: F.gumbel_softmax(l, 0.7, FrozenRng()), [logits])

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ConfigurationError):
            F.gumbel_softmax(_t((2,), 0), tau=0.0, rng=np.random.default_rng(0))

    def test_degenerate_infinite_draw_stays_finite(self):
        """A logistic sampler can emit +/-Inf when the underlying uniform
        draw is exactly 0 or 1 (log(0)); the clamp keeps output and
        gradients finite instead of propagating NaN into the loop."""

        class DegenerateRng:
            def logistic(self, loc=0.0, scale=1.0, size=None):
                noise = np.zeros(size)
                noise.flat[0] = np.inf
                noise.flat[-1] = -np.inf
                return noise

        logits = _t((6,), 5)
        out = F.gumbel_softmax(logits, tau=0.5, rng=DegenerateRng())
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(logits.grad).all()
        # The clamped draw still saturates in the right direction.
        assert out.data[0] > 0.99
        assert out.data[-1] < 0.01

    def test_nondegenerate_draws_bit_identical(self):
        """The clamp bound sits far beyond any non-degenerate float64
        logistic draw, so normal sampling is bit-identical to the
        unclipped computation."""
        logits = _t((64,), 6, scale=2.0)
        noise = np.random.default_rng(9).logistic(scale=0.3, size=64)

        class FrozenRng:
            def logistic(self, loc=0.0, scale=1.0, size=None):
                return noise.copy()

        tau = 0.7
        out = F.gumbel_softmax(logits, tau=tau, rng=FrozenRng(), noise_scale=0.3)
        expected = ((Tensor(logits.data) + noise) * (1.0 / tau)).sigmoid()
        assert np.array_equal(out.data, expected.data)


class TestSTE:
    def test_forward_binarizes(self):
        x = Tensor(np.array([0.1, 0.49, 0.51, 0.9]))
        assert F.ste_binarize(x).data.tolist() == [0.0, 0.0, 1.0, 1.0]

    def test_backward_identity(self):
        x = Tensor(np.array([0.2, 0.8]), requires_grad=True)
        out = F.ste_binarize(x)
        out.backward(np.array([3.0, -1.5]))
        assert np.allclose(x.grad, [3.0, -1.5])

    def test_custom_threshold(self):
        x = Tensor(np.array([0.1, 0.2, 0.3]))
        assert F.ste_binarize(x, threshold=0.15).data.tolist() == [0.0, 1.0, 1.0]


class TestLinear:
    def test_matches_numpy(self):
        x, w, b = _t((4, 3), 0), _t((3, 5), 1), _t((5,), 2)
        out = F.linear(x, w, b)
        assert np.allclose(out.data, x.data @ w.data + b.data)

    def test_gradcheck(self):
        gradcheck(lambda x, w, b: F.linear(x, w, b), [_t((4, 3), 0), _t((3, 5), 1), _t((5,), 2)])

    def test_no_bias(self):
        gradcheck(lambda x, w: F.linear(x, w), [_t((2, 3), 0), _t((3, 2), 1)])


class TestConv2d:
    def test_matches_scipy(self):
        from scipy.signal import correlate

        x = _t((1, 2, 6, 6), 0)
        w = _t((3, 2, 3, 3), 1)
        out = F.conv2d(x, w, stride=1, padding=0)
        for f in range(3):
            expected = sum(
                correlate(x.data[0, c], w.data[f, c], mode="valid") for c in range(2)
            )
            assert np.allclose(out.data[0, f], expected)

    def test_gradcheck_basic(self):
        gradcheck(
            lambda x, w: F.conv2d(x, w),
            [_t((2, 2, 5, 5), 0), _t((3, 2, 3, 3), 1)],
        )

    def test_gradcheck_stride_padding(self):
        gradcheck(
            lambda x, w: F.conv2d(x, w, stride=2, padding=1),
            [_t((1, 2, 6, 6), 2), _t((2, 2, 3, 3), 3)],
        )

    def test_gradcheck_bias(self):
        gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [_t((1, 1, 4, 4), 0), _t((2, 1, 3, 3), 1), _t((2,), 2)],
        )

    def test_output_shape(self):
        x = _t((2, 3, 8, 8), 0)
        w = _t((4, 3, 3, 3), 1)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_rejects_bad_input_rank(self):
        with pytest.raises(ShapeError):
            F.conv2d(_t((3, 8, 8), 0), _t((4, 3, 3, 3), 1))

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ShapeError):
            F.conv2d(_t((1, 3, 8, 8), 0), _t((4, 2, 3, 3), 1))

    def test_rejects_empty_output(self):
        with pytest.raises(ShapeError):
            F.conv2d(_t((1, 1, 2, 2), 0), _t((1, 1, 5, 5), 1))


class TestSumPool:
    def test_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.sum_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[10.0, 18.0], [42.0, 50.0]])

    def test_gradcheck(self):
        gradcheck(lambda x: F.sum_pool2d(x, 2), [_t((2, 3, 4, 4), 0)])

    def test_rejects_indivisible(self):
        with pytest.raises(ShapeError):
            F.sum_pool2d(_t((1, 1, 5, 5), 0), 2)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            F.sum_pool2d(_t((1, 4, 4), 0), 2)


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self):
        out = F.softmax(_t((3, 5), 0))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradcheck(self):
        gradcheck(lambda x: F.softmax(x), [_t((2, 4), 1)])

    def test_log_softmax_consistency(self):
        x = _t((2, 4), 2)
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_cross_entropy_value(self):
        logits = Tensor(np.array([[10.0, 0.0, 0.0]]), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0]))
        assert loss.item() < 0.01

    def test_cross_entropy_gradcheck(self):
        labels = np.array([1, 0, 2])
        gradcheck(lambda x: F.cross_entropy(x, labels), [_t((3, 4), 3)])

    def test_cross_entropy_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(_t((3,), 0), np.array([0]))
        with pytest.raises(ShapeError):
            F.cross_entropy(_t((3, 4), 0), np.array([0, 1]))
