"""Tests for optimisers and annealing schedules."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.autograd.optim import SGD, Adam
from repro.autograd.schedule import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialAnnealing,
    LinearAnnealing,
    StepDecay,
)
from repro.errors import ConfigurationError


def _quadratic_param(start):
    return Tensor(np.array(start, dtype=np.float64), requires_grad=True)


def _step(param, opt):
    opt.zero_grad()
    loss = ((param - 3.0) * (param - 3.0)).sum()
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0])
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            _step(p, opt)
        assert np.allclose(p.data, [3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        p_plain = _quadratic_param([0.0])
        p_mom = _quadratic_param([0.0])
        opt_plain = SGD([p_plain], lr=0.01)
        opt_mom = SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(30):
            _step(p_plain, opt_plain)
            _step(p_mom, opt_mom)
        assert abs(p_mom.item() - 3.0) < abs(p_plain.item() - 3.0)

    def test_skips_params_without_grad(self):
        p = _quadratic_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward yet; must not crash or move the param
        assert np.allclose(p.data, [1.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigurationError):
            SGD([_quadratic_param([0.0])], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD([_quadratic_param([0.0])], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0])
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            _step(p, opt)
        assert np.allclose(p.data, [3.0], atol=1e-2)

    def test_handles_vector_params(self):
        p = Tensor(np.zeros(5), requires_grad=True)
        opt = Adam([p], lr=0.2)
        target = np.arange(5.0)
        for _ in range(300):
            opt.zero_grad()
            diff = p - Tensor(target)
            (diff * diff).sum().backward()
            opt.step()
        assert np.allclose(p.data, target, atol=0.05)

    def test_lr_is_mutable_for_schedules(self):
        p = _quadratic_param([0.0])
        opt = Adam([p], lr=0.1)
        opt.lr = 0.5
        assert opt.lr == 0.5

    def test_rejects_empty_params(self):
        with pytest.raises(ConfigurationError):
            Adam([])

    def test_rejects_no_grad_param(self):
        with pytest.raises(ConfigurationError):
            Adam([Tensor(np.zeros(2))])

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([_quadratic_param([0.0])], betas=(1.0, 0.9))


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(100) == 0.5

    def test_linear_endpoints(self):
        s = LinearAnnealing(1.0, 0.1, total_steps=10)
        assert s(0) == 1.0
        assert np.isclose(s(10), 0.1)
        assert np.isclose(s(20), 0.1)  # clamps after total_steps

    def test_linear_midpoint(self):
        s = LinearAnnealing(1.0, 0.0, total_steps=10)
        assert np.isclose(s(5), 0.5)

    def test_exponential_monotone(self):
        s = ExponentialAnnealing(1.0, 0.1, decay=0.9)
        values = [s(i) for i in range(50)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] >= 0.1

    def test_cosine_endpoints(self):
        s = CosineAnnealing(1.0, 0.0, total_steps=10)
        assert np.isclose(s(0), 1.0)
        assert np.isclose(s(10), 0.0)

    def test_step_decay(self):
        s = StepDecay(1.0, factor=0.5, period=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_step_decay_floor(self):
        s = StepDecay(1.0, factor=0.1, period=1, floor=0.05)
        assert s(10) == 0.05

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(1.0)(-1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LinearAnnealing(1.0, 0.0, total_steps=0)
        with pytest.raises(ConfigurationError):
            ExponentialAnnealing(1.0, 0.0, decay=1.5)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, factor=0.0, period=5)
        with pytest.raises(ConfigurationError):
            StepDecay(1.0, factor=0.5, period=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(1.0, 0.0, total_steps=0)
