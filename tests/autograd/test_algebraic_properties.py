"""Hypothesis property tests for the autograd engine: algebraic identities
must hold for both values and gradients."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd.tensor import Tensor


def _finite_arrays(shape=(3,)):
    return arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=64),
    )


def _grad_of(fn, *inputs):
    tensors = [Tensor(x, requires_grad=True) for x in inputs]
    fn(*tensors).sum().backward()
    return [t.grad if t.grad is not None else np.zeros_like(t.data) for t in tensors]


class TestAlgebraicIdentities:
    @given(_finite_arrays(), _finite_arrays(), _finite_arrays())
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, a, b, c):
        left = _grad_of(lambda a, b, c: (a + b) * c, a, b, c)
        right = _grad_of(lambda a, b, c: a * c + b * c, a, b, c)
        for l, r in zip(left, right):
            assert np.allclose(l, r, atol=1e-10)

    @given(_finite_arrays(), _finite_arrays())
    @settings(max_examples=60, deadline=None)
    def test_commutativity_of_add(self, a, b):
        left = _grad_of(lambda a, b: a + b, a, b)
        right = _grad_of(lambda a, b: b + a, a, b)
        for l, r in zip(left, right):
            assert np.allclose(l, r)

    @given(_finite_arrays())
    @settings(max_examples=60, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        (grad,) = _grad_of(lambda a: a.sum(), a)
        assert np.allclose(grad, 1.0)

    @given(_finite_arrays(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scalar_mul_scales_gradient(self, a, k):
        (grad,) = _grad_of(lambda a: a * k, a)
        assert np.allclose(grad, k)

    @given(_finite_arrays())
    @settings(max_examples=60, deadline=None)
    def test_double_negation_identity(self, a):
        left = _grad_of(lambda a: -(-a), a)
        right = _grad_of(lambda a: a * 1.0, a)
        assert np.allclose(left[0], right[0])

    @given(_finite_arrays())
    @settings(max_examples=40, deadline=None)
    def test_exp_log_inverse_gradient(self, a):
        # log(exp(a)) == a, so d/da == 1 everywhere.
        (grad,) = _grad_of(lambda a: a.exp().log(), a)
        assert np.allclose(grad, 1.0, atol=1e-8)

    @given(_finite_arrays((2, 3)), _finite_arrays((3, 2)))
    @settings(max_examples=40, deadline=None)
    def test_matmul_matches_numpy(self, a, b):
        out = Tensor(a) @ Tensor(b)
        assert np.allclose(out.data, a @ b)

    @given(_finite_arrays((4,)))
    @settings(max_examples=40, deadline=None)
    def test_reshape_preserves_gradient_mass(self, a):
        (grad_flat,) = _grad_of(lambda a: a.reshape(2, 2).sum(), a)
        assert np.allclose(grad_flat, 1.0)

    @given(_finite_arrays((3,)), _finite_arrays((3,)))
    @settings(max_examples=60, deadline=None)
    def test_max_min_partition_gradient(self, a, b):
        # maximum + minimum == a + b elementwise, so gradients sum to 1.
        ga = _grad_of(lambda a, b: a.maximum(b) + a.minimum(b), a, b)
        assert np.allclose(ga[0] + ga[1], 2.0)
