"""Gradient correctness of the fused BPTT kernels (repro.autograd.fused).

Two independent lines of evidence:

1. **Bitwise equality with the elementary tape** — the fused kernel must
   reproduce, bit for bit, the float64 input gradients that the per-step
   ``lif_step_tensor`` tape produces, for both reset modes, nonzero
   refractory periods, and recurrent feedback.  This is the property the
   test-generation differential tests build on.
2. **Central-difference gradcheck in soft mode** — with the Heaviside
   replaced by a sigmoid the kernel is a true differentiable function, so
   numerical differentiation validates the hand-written BPTT recursion
   itself (not just its agreement with another implementation).
"""

import numpy as np
import pytest

from repro.autograd import fused
from repro.autograd.tensor import Tensor, stack
from repro.snn.neuron import LIFState, lif_step_tensor

N = 9  # neurons per layer in these tests


def _params(n=N, threshold=1.0, leak=0.9, refractory=1):
    th = np.full((1, n), threshold)
    lk = np.full((1, n), leak)
    rf = np.full((1, n), refractory, dtype=np.int64)
    return th, lk, rf


def _random_currents(steps, n=N, seed=0, scale=2.0):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, size=(steps, 1, n))


def _elementary(currents, th, lk, rf, reset_mode, w_rec=None, slope=5.0):
    """Per-step elementary-tape reference; returns (spike stack, input grad,
    w_rec grad) after backward on a composite loss."""
    steps = currents.shape[0]
    xt = Tensor(currents, requires_grad=True)
    wr = Tensor(w_rec, requires_grad=True) if w_rec is not None else None
    state = LIFState.zeros_tensor(currents.shape[1:])
    spikes = []
    for t in range(steps):
        current = xt[t]
        if wr is not None:
            current = current + state.last_spike @ wr
        spikes.append(
            lif_step_tensor(current, state, th, lk, rf, "fast_sigmoid", slope, reset_mode)
        )
    out = stack(spikes, axis=0)
    loss = out.mean() + (out * out).sum() * 0.05 + out[1:].sum() * 0.25
    loss.backward()
    return out.data.copy(), xt.grad.copy(), None if wr is None else wr.grad.copy()


def _fused(currents, th, lk, rf, reset_mode, w_rec=None, slope=5.0):
    xt = Tensor(currents, requires_grad=True)
    if w_rec is None:
        out = fused.lif_sequence(
            xt, th, lk, rf, surrogate_slope=slope, reset_mode=reset_mode
        )
        wr = None
    else:
        wr = Tensor(w_rec, requires_grad=True)
        out = fused.recurrent_lif_sequence(
            xt, wr, th, lk, rf, surrogate_slope=slope, reset_mode=reset_mode
        )
    loss = out.mean() + (out * out).sum() * 0.05 + out[1:].sum() * 0.25
    loss.backward()
    return out.data.copy(), xt.grad.copy(), None if wr is None else wr.grad.copy()


@pytest.mark.parametrize("reset_mode", ["zero", "subtract"])
@pytest.mark.parametrize("refractory", [0, 1, 2])
def test_fused_matches_elementary_bitwise(reset_mode, refractory):
    th, lk, rf = _params(refractory=refractory)
    currents = _random_currents(steps=11, seed=42)
    spikes_e, grad_e, _ = _elementary(currents, th, lk, rf, reset_mode)
    spikes_f, grad_f, _ = _fused(currents, th, lk, rf, reset_mode)
    assert np.array_equal(spikes_e, spikes_f)
    assert np.array_equal(grad_e, grad_f)  # bitwise, not allclose


@pytest.mark.parametrize("reset_mode", ["zero", "subtract"])
def test_fused_recurrent_matches_elementary(reset_mode):
    rng = np.random.default_rng(7)
    w_rec = rng.normal(0.0, 0.4, size=(N, N))
    th, lk, rf = _params(refractory=1)
    currents = _random_currents(steps=9, seed=3)
    spikes_e, grad_e, wg_e = _elementary(currents, th, lk, rf, reset_mode, w_rec=w_rec)
    spikes_f, grad_f, wg_f = _fused(currents, th, lk, rf, reset_mode, w_rec=w_rec)
    assert np.array_equal(spikes_e, spikes_f)
    assert np.array_equal(grad_e, grad_f)
    # The recurrent weight gradient sums T outer products; the fused scan
    # accumulates them in descending-t order like the reversed tape, so it
    # is bitwise too.
    assert np.array_equal(wg_e, wg_f)


def test_fused_heterogeneous_parameters():
    """Per-neuron thresholds/leaks/refractory mix, not just uniform fills
    (exercises the generic scan, not the refractory-1 fast path)."""
    rng = np.random.default_rng(11)
    th = rng.uniform(0.6, 1.4, size=(1, N))
    lk = rng.uniform(0.7, 0.99, size=(1, N))
    rf = rng.integers(0, 4, size=(1, N))
    currents = _random_currents(steps=10, seed=13)
    for reset_mode in ("zero", "subtract"):
        spikes_e, grad_e, _ = _elementary(currents, th, lk, rf, reset_mode)
        spikes_f, grad_f, _ = _fused(currents, th, lk, rf, reset_mode)
        assert np.array_equal(spikes_e, spikes_f)
        assert np.array_equal(grad_e, grad_f)


@pytest.mark.parametrize("reset_mode", ["zero", "subtract"])
@pytest.mark.parametrize("refractory", [0, 2])
def test_soft_mode_gradcheck(reset_mode, refractory):
    """Central differences validate the BPTT recursion in soft mode."""
    n = 4
    steps = 6
    th = np.full((1, n), 0.8)
    lk = np.full((1, n), 0.9)
    rf = np.full((1, n), refractory, dtype=np.int64)
    currents = _random_currents(steps, n=n, seed=5, scale=1.5)
    slope = 2.0

    def loss_of(c):
        xt = Tensor(c, requires_grad=True)
        out = fused.lif_sequence(
            xt, th, lk, rf, surrogate_slope=slope, reset_mode=reset_mode, soft=True
        )
        return xt, (out * out).sum() + out.mean() * 0.5

    xt, loss = loss_of(currents)
    loss.backward()
    analytic = xt.grad.copy()

    eps = 1e-6
    rng = np.random.default_rng(17)
    flat = currents.ravel()
    for idx in rng.choice(flat.size, size=12, replace=False):
        bump = np.zeros_like(flat)
        bump[idx] = eps
        _, lp = loss_of((flat + bump).reshape(currents.shape))
        _, lm = loss_of((flat - bump).reshape(currents.shape))
        numeric = (lp.item() - lm.item()) / (2.0 * eps)
        assert analytic.ravel()[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_soft_mode_gradcheck_recurrent():
    n = 4
    steps = 5
    th = np.full((1, n), 0.8)
    lk = np.full((1, n), 0.9)
    rf = np.full((1, n), 1, dtype=np.int64)
    rng = np.random.default_rng(23)
    w_rec = rng.normal(0.0, 0.5, size=(n, n))
    currents = _random_currents(steps, n=n, seed=29, scale=1.5)
    slope = 2.0

    def loss_of(c, w):
        xt = Tensor(c, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        out = fused.recurrent_lif_sequence(
            xt, wt, th, lk, rf, surrogate_slope=slope, reset_mode="zero", soft=True
        )
        return xt, wt, (out * out).sum() + out.mean() * 0.5

    xt, wt, loss = loss_of(currents, w_rec)
    loss.backward()
    g_c, g_w = xt.grad.copy(), wt.grad.copy()

    eps = 1e-6
    flat_c = currents.ravel()
    for idx in rng.choice(flat_c.size, size=6, replace=False):
        bump = np.zeros_like(flat_c)
        bump[idx] = eps
        *_, lp = loss_of((flat_c + bump).reshape(currents.shape), w_rec)
        *_, lm = loss_of((flat_c - bump).reshape(currents.shape), w_rec)
        numeric = (lp.item() - lm.item()) / (2.0 * eps)
        assert g_c.ravel()[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)
    flat_w = w_rec.ravel()
    for idx in rng.choice(flat_w.size, size=6, replace=False):
        bump = np.zeros_like(flat_w)
        bump[idx] = eps
        *_, lp = loss_of(currents, (flat_w + bump).reshape(w_rec.shape))
        *_, lm = loss_of(currents, (flat_w - bump).reshape(w_rec.shape))
        numeric = (lp.item() - lm.item()) / (2.0 * eps)
        assert g_w.ravel()[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_float32_smoke():
    """float32 currents stay float32 through the kernel, forward and grad."""
    th, lk, rf = _params()
    currents = _random_currents(steps=8, seed=31).astype(np.float32)
    xt = Tensor(currents, requires_grad=True, dtype=np.float32)
    out = fused.lif_sequence(xt, th, lk, rf)
    assert out.data.dtype == np.float32
    out.sum().backward()
    assert xt.grad.dtype == np.float32
    assert np.isfinite(xt.grad).all()


def test_validation_errors():
    th, lk, rf = _params()
    c = Tensor(np.zeros((4, 1, N)))
    with pytest.raises(Exception):
        fused.lif_sequence(c, th, lk, rf, surrogate="nope")
    with pytest.raises(Exception):
        fused.lif_sequence(c, th, lk, rf, reset_mode="nope")
    with pytest.raises(Exception):
        fused.lif_sequence(Tensor(np.zeros(3)), th, lk, rf)
    with pytest.raises(Exception):
        fused.recurrent_lif_sequence(
            Tensor(np.zeros((4, 1, 2, 2))), Tensor(np.eye(4)), th, lk, rf
        )
