"""Differential tests: the fused BPTT path must generate bit-identical
float64 results to the legacy per-timestep tape.

The fused path (``TestGenConfig.fused_bptt=True``, the default) swaps the
whole differentiable simulation — sampling, forward, backward — for the
kernels in :mod:`repro.autograd.fused`.  These tests pin the contract that
makes that swap safe: on a fixed seed, stage optimisation and the full
generation loop produce *exactly* the same stimuli, losses, and adoption
decisions as the elementary tape.
"""

import numpy as np
import pytest

from repro.core import TestGenConfig, TestGenerator
from repro.core.input_param import InputParameterization
from repro.core.losses import LossWeights
from repro.core.stage import run_stage
from repro.core.generator import surrogate_override
from repro.snn import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    LIFParameters,
    NetworkSpec,
    PoolSpec,
    RecurrentSpec,
    build_network,
)

DENSE = NetworkSpec(
    name="dense",
    input_shape=(12,),
    layers=(DenseSpec(out_features=10), DenseSpec(out_features=4)),
)
DENSE_SUB = NetworkSpec(
    name="dense-sub",
    input_shape=(12,),
    layers=(DenseSpec(out_features=10), DenseSpec(out_features=4)),
    lif=LIFParameters(reset_mode="subtract", refractory_steps=2),
)
RECURRENT = NetworkSpec(
    name="recur",
    input_shape=(10,),
    layers=(RecurrentSpec(out_features=12), DenseSpec(out_features=3)),
)
CONV = NetworkSpec(
    name="conv",
    input_shape=(2, 8, 8),
    layers=(
        ConvSpec(out_channels=3, kernel=3, padding=1),
        PoolSpec(window=2),
        FlattenSpec(),
        DenseSpec(out_features=5),
    ),
)


def _stage_result(spec, fused, steps=15, duration=6, seed=11):
    network = build_network(spec, np.random.default_rng(1))
    config = TestGenConfig(t_in_min=duration, steps_stage1=steps, fused_bptt=fused)
    rng = np.random.default_rng(seed)
    param = InputParameterization(
        network.input_shape,
        duration,
        rng,
        init_scale=config.init_logit_scale,
        init_bias=config.init_logit_bias,
        dtype=config.np_dtype,
    )
    with surrogate_override(network, config.surrogate_slope):
        if fused:
            probe = network.forward_fused(param.sample_sequence(config.tau_max, 1.0))
        else:
            probe = network.forward(param.sample(config.tau_max, 1.0))
        td_min = config.effective_td_min(duration)
        weights = LossWeights.balanced(probe, network, td_min)
        objective = lambda record, seq: weights.combined(record, network, td_min)
        return run_stage(network, param, objective, steps, config), network


@pytest.mark.parametrize("spec", [DENSE, DENSE_SUB, RECURRENT, CONV], ids=lambda s: s.name)
def test_run_stage_bit_identical(spec):
    fused, _ = _stage_result(spec, fused=True)
    legacy, _ = _stage_result(spec, fused=False)
    assert fused.best_loss == legacy.best_loss
    assert fused.loss_history == legacy.loss_history
    assert np.array_equal(fused.best_stimulus, legacy.best_stimulus)
    assert np.array_equal(fused.best_output, legacy.best_output)


def test_best_output_matches_rerun():
    """StageResult.best_output equals simulating the best stimulus afresh —
    the invariant that lets the generator skip re-running winners."""
    result, network = _stage_result(DENSE, fused=True)
    assert result.best_output is not None
    rerun = network.run(result.best_stimulus)
    assert np.array_equal(result.best_output, rerun.reshape(result.best_output.shape))


def test_stage_timing_populated():
    result, _ = _stage_result(DENSE, fused=True)
    assert result.forward_s > 0.0
    assert result.backward_s > 0.0
    assert result.optimizer_s > 0.0


@pytest.mark.parametrize("spec", [DENSE, RECURRENT], ids=lambda s: s.name)
def test_full_generation_bit_identical(spec):
    def generate(fused):
        network = build_network(spec, np.random.default_rng(1))
        config = TestGenConfig(
            t_in_min=6,
            steps_stage1=20,
            max_iterations=2,
            probe_steps=5,
            fused_bptt=fused,
        )
        generator = TestGenerator(network, config, np.random.default_rng(5))
        return generator.generate()

    a = generate(True)
    b = generate(False)
    assert len(a.stimulus.chunks) == len(b.stimulus.chunks)
    for x, y in zip(a.stimulus.chunks, b.stimulus.chunks):
        assert np.array_equal(x, y)
    assert a.t_in_min == b.t_in_min
    assert a.activated_fraction == b.activated_fraction
    key = lambda r: (r.stage1_loss, r.stage2_loss, r.stage2_adopted, r.new_activations)
    assert [key(r) for r in a.iterations] == [key(r) for r in b.iterations]


def test_iteration_timing_populated():
    network = build_network(DENSE, np.random.default_rng(1))
    config = TestGenConfig(
        t_in_min=6, steps_stage1=10, max_iterations=1, probe_steps=4
    )
    generator = TestGenerator(network, config, np.random.default_rng(5))
    result = generator.generate()
    for report in result.iterations:
        assert report.stage1_s > 0.0
        assert report.stage2_s > 0.0
        assert report.bookkeeping_s >= 0.0


def test_activation_sets_memoized():
    network = build_network(DENSE, np.random.default_rng(1))
    config = TestGenConfig(t_in_min=4)
    generator = TestGenerator(network, config, np.random.default_rng(5))
    stimulus = (np.random.default_rng(2).random((4, 1, 12)) > 0.5).astype(np.float64)
    first = generator.activation_sets(stimulus)
    second = generator.activation_sets(stimulus)
    assert first is second  # served from cache
    other = generator.activation_sets(1.0 - stimulus)
    assert other is not first
    for got, expect in zip(
        first,
        [rec[:, 0, :].sum(axis=0) >= config.activation_threshold
         for rec in network.run_spiking_layers(stimulus)],
    ):
        assert np.array_equal(got, expect)


def test_float32_mode_generates():
    """float32 opt-in runs end to end and still yields a binary stimulus."""
    network = build_network(DENSE, np.random.default_rng(1))
    config = TestGenConfig(
        t_in_min=6,
        steps_stage1=10,
        max_iterations=1,
        probe_steps=4,
        dtype="float32",
    )
    generator = TestGenerator(network, config, np.random.default_rng(5))
    result = generator.generate()
    assert result.stimulus.chunks
    for chunk in result.stimulus.chunks:
        assert set(np.unique(chunk)).issubset({0.0, 1.0})


def test_float32_requires_fused():
    with pytest.raises(Exception):
        TestGenConfig(dtype="float32", fused_bptt=False)
