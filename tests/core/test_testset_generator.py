"""Tests for test assembly (Eqs. 7-8), the generator loop, config
validation, and the final coverage verification."""

import numpy as np
import pytest

from repro.core import TestGenConfig, TestGenerator, TestStimulus, verify_coverage
from repro.errors import ConfigurationError, TestGenerationError
from repro.faults import FaultModelConfig, build_catalog
from repro.faults.simulator import FaultSimulator


def _chunk(duration, shape=(5,), value=1.0):
    chunk = np.zeros((duration, 1) + shape)
    chunk[0] = value
    return chunk


class TestTestStimulus:
    def test_duration_eq8(self):
        # T_test = 2*3 + 2*4 + 5 = 19
        stim = TestStimulus(chunks=[_chunk(3), _chunk(4), _chunk(5)], input_shape=(5,))
        assert stim.duration_steps == 19

    def test_single_chunk_no_sleep(self):
        stim = TestStimulus(chunks=[_chunk(7)], input_shape=(5,))
        assert stim.duration_steps == 7

    def test_assembled_matches_eq7(self):
        a, b = _chunk(2), _chunk(3)
        stim = TestStimulus(chunks=[a, b], input_shape=(5,))
        out = stim.assembled()
        assert out.shape == (2 + 2 + 3, 1, 5)
        assert np.array_equal(out[:2], a)
        assert np.all(out[2:4] == 0.0)  # sleep gap equal to chunk 1 length
        assert np.array_equal(out[4:], b)

    def test_duration_samples(self):
        stim = TestStimulus(chunks=[_chunk(10), _chunk(10)], input_shape=(5,))
        assert stim.duration_samples(10) == 3.0

    def test_duration_samples_validation(self):
        stim = TestStimulus(chunks=[_chunk(4)], input_shape=(5,))
        with pytest.raises(TestGenerationError):
            stim.duration_samples(0)

    def test_storage_bits(self):
        stim = TestStimulus(chunks=[_chunk(3), _chunk(4)], input_shape=(5,))
        assert stim.storage_bits() == (3 + 4) * 5

    def test_rejects_empty(self):
        with pytest.raises(TestGenerationError):
            TestStimulus(chunks=[], input_shape=(5,))

    def test_rejects_bad_chunk_shape(self):
        with pytest.raises(TestGenerationError):
            TestStimulus(chunks=[np.zeros((4, 2, 5))], input_shape=(5,))

    def test_save_load_round_trip(self, tmp_path):
        stim = TestStimulus(chunks=[_chunk(3), _chunk(4)], input_shape=(5,))
        path = str(tmp_path / "test.npz")
        stim.save(path)
        loaded = TestStimulus.load(path, (5,))
        assert len(loaded.chunks) == 2
        for a, b in zip(stim.chunks, loaded.chunks):
            assert np.array_equal(a, b)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t_in_min": 0},
            {"t_in_start": 0},
            {"t_in_max": 2, "t_in_start": 4},
            {"td_min": -1},
            {"steps_stage1": 0},
            {"steps_stage2": 0},
            {"beta": 0},
            {"max_growths": -1},
            {"tau_min": 0.0},
            {"tau_min": 0.95},  # > tau_max
            {"tau_decay": 1.0},
            {"lr": 0.0},
            {"gumbel_noise": -1.0},
            {"stage2_constancy_weight": -1.0},
            {"time_limit_s": 0.0},
            {"max_iterations": 0},
            {"stall_iterations": 0},
            {"activation_threshold": 0},
            {"surrogate_slope": 0.0},
            {"probe_steps": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TestGenConfig(**kwargs)

    def test_stage2_default_half(self):
        assert TestGenConfig(steps_stage1=100).effective_steps_stage2 == 50
        assert TestGenConfig(steps_stage1=100, steps_stage2=7).effective_steps_stage2 == 7

    def test_td_min_rule(self):
        assert TestGenConfig().effective_td_min(40) == 4
        assert TestGenConfig().effective_td_min(5) == 2  # floor
        assert TestGenConfig(td_min=9).effective_td_min(40) == 9


class TestGeneratorEndToEnd:
    @pytest.fixture(scope="class")
    def generation(self, tiny_network):
        config = TestGenConfig(
            steps_stage1=60,
            probe_steps=100,
            max_iterations=5,
            time_limit_s=120,
            t_in_max=48,
        )
        generator = TestGenerator(tiny_network, config, rng=np.random.default_rng(7))
        return generator, generator.generate()

    def test_produces_chunks(self, generation):
        _, result = generation
        assert 1 <= result.num_chunks <= 5
        assert result.runtime_s > 0

    def test_activation_monotone_nondecreasing(self, generation):
        _, result = generation
        totals = [r.activated_total for r in result.iterations]
        assert totals == sorted(totals)

    def test_activation_beats_random_sample(self, generation, tiny_network, tiny_dataset):
        generator, result = generation
        sample, _ = tiny_dataset.sample(0)
        random_acts = generator.activation_sets(sample)
        random_fraction = sum(a.sum() for a in random_acts) / sum(a.size for a in random_acts)
        assert result.activated_fraction > random_fraction

    def test_activated_sets_consistent_with_stimulus(self, generation, tiny_network):
        generator, result = generation
        # Re-simulating every chunk must reproduce at least the recorded set.
        seen = [np.zeros_like(a) for a in result.activated_per_layer]
        for chunk in result.stimulus.chunks:
            for known, new in zip(seen, generator.activation_sets(chunk)):
                known |= new
        for recorded, replayed in zip(result.activated_per_layer, seen):
            assert np.array_equal(recorded, replayed)

    def test_surrogate_slope_restored(self, generation, tiny_network):
        for module in tiny_network.spiking_modules:
            assert module.surrogate_slope == module.params.surrogate_slope

    def test_stimulus_is_binary(self, generation):
        _, result = generation
        for chunk in result.stimulus.chunks:
            assert set(np.unique(chunk)).issubset({0.0, 1.0})

    def test_reports_have_diagnostics(self, generation):
        _, result = generation
        for report in result.iterations:
            assert report.duration >= 1
            assert np.isfinite(report.stage1_loss)

    def test_verify_coverage_runs(self, generation, tiny_network, tiny_dataset):
        _, result = generation
        fault_config = FaultModelConfig(synapse_sample_fraction=0.1)
        catalog = build_catalog(tiny_network, fault_config, rng=np.random.default_rng(0))
        detection, breakdown = verify_coverage(
            tiny_network, result.stimulus, catalog.faults, fault_config
        )
        assert breakdown is None
        assert detection.detected.shape == (len(catalog.faults),)
        assert detection.detection_rate() > 0.3

    def test_verify_coverage_with_labels(self, generation, tiny_network, tiny_dataset):
        _, result = generation
        fault_config = FaultModelConfig(synapse_sample_fraction=0.1)
        catalog = build_catalog(tiny_network, fault_config, rng=np.random.default_rng(0))
        simulator = FaultSimulator(tiny_network, fault_config)
        inputs, labels = tiny_dataset.subset(10, "test")
        classification = simulator.classify(inputs, labels, catalog.faults)
        detection, breakdown = verify_coverage(
            tiny_network, result.stimulus, catalog.faults, fault_config, classification
        )
        assert breakdown is not None
        assert breakdown.fc_critical_neuron >= breakdown.fc_benign_neuron * 0.5

    def test_time_limit_respected(self, tiny_network):
        config = TestGenConfig(
            steps_stage1=10_000, probe_steps=5, t_in_min=6, time_limit_s=1.0,
            max_iterations=50,
        )
        generator = TestGenerator(tiny_network, config, rng=np.random.default_rng(0))
        import time

        start = time.perf_counter()
        result = generator.generate()
        assert time.perf_counter() - start < 30.0
        assert result.num_chunks >= 1
