"""Tests for the differentiable perturbation relaxations
(`repro.core.perturbation`) — the extended fault model's loss surrogates —
and their wiring into the generator."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.config import TestGenConfig
from repro.core.perturbation import (
    loss_parametric_divergence,
    loss_transient_coverage,
    scaled_thresholds,
)
from repro.errors import ConfigurationError, ShapeError
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.snn.network import ForwardRecord


def _record_from_arrays(layers):
    layer_spikes = []
    for arr in layers:
        layer_spikes.append([Tensor(arr[t]) for t in range(arr.shape[0])])
    return ForwardRecord(
        layer_spikes=layer_spikes,
        layer_names=[str(i) for i in range(len(layers))],
    )


def _net(seed=0):
    spec = NetworkSpec(
        name="perturb",
        input_shape=(6,),
        layers=(DenseSpec(out_features=5), DenseSpec(out_features=3)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    return build_network(spec, np.random.default_rng(seed))


class TestScaledThresholds:
    def test_scales_and_restores(self):
        net = _net()
        originals = [m.threshold.copy() for m in net.spiking_modules]
        with scaled_thresholds(net, 2.0):
            for module, orig in zip(net.spiking_modules, originals):
                assert np.allclose(module.threshold, orig * 2.0)
        for module, orig in zip(net.spiking_modules, originals):
            assert np.array_equal(module.threshold, orig)

    def test_restores_on_exception(self):
        net = _net()
        originals = [m.threshold.copy() for m in net.spiking_modules]
        with pytest.raises(RuntimeError):
            with scaled_thresholds(net, 3.0):
                raise RuntimeError("boom")
        for module, orig in zip(net.spiking_modules, originals):
            assert np.array_equal(module.threshold, orig)

    @pytest.mark.parametrize("scale", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_degenerate_scales(self, scale):
        with pytest.raises(ShapeError):
            with scaled_thresholds(_net(), scale):
                pass

    def test_perturbed_forward_changes_spikes(self):
        net = _net()
        rng = np.random.default_rng(1)
        seq = (rng.random((8, 1, 6)) < 0.7).astype(float)
        nominal = net.run_modules(seq)[-1].sum()
        with scaled_thresholds(net, 8.0):
            perturbed = net.run_modules(seq)[-1].sum()
        assert perturbed < nominal


class TestParametricDivergence:
    def test_zero_when_counts_diverge_by_margin(self):
        a = np.zeros((4, 1, 3))
        a[:2] = 1.0  # each neuron spikes twice
        b = np.zeros((4, 1, 3))
        b[:1] = 1.0  # each neuron spikes once: gap 1 >= margin 1
        loss = loss_parametric_divergence(
            _record_from_arrays([a]), _record_from_arrays([b]), margin=1.0
        )
        assert loss.item() == 0.0

    def test_identical_records_pay_full_margin(self):
        a = np.zeros((4, 1, 3))
        a[0] = 1.0
        loss = loss_parametric_divergence(
            _record_from_arrays([a]), _record_from_arrays([a]), margin=1.0
        )
        assert loss.item() == 3.0  # margin * 3 neurons

    def test_mask_restricts(self):
        a = np.zeros((4, 1, 3))
        loss = loss_parametric_divergence(
            _record_from_arrays([a]),
            _record_from_arrays([a]),
            margin=1.0,
            masks=[np.array([True, False, False])],
        )
        assert loss.item() == 1.0

    def test_layer_mismatch_rejected(self):
        a = np.zeros((4, 1, 3))
        with pytest.raises(ShapeError):
            loss_parametric_divergence(
                _record_from_arrays([a]), _record_from_arrays([a, a])
            )


class TestTransientCoverage:
    def test_zero_when_active_in_every_bin(self):
        a = np.zeros((6, 1, 2))
        a[0] = 1.0  # bin [0, 3)
        a[4] = 1.0  # bin [3, 6)
        assert loss_transient_coverage(_record_from_arrays([a]), bins=2).item() == 0.0

    def test_penalises_silent_bin(self):
        a = np.zeros((6, 1, 2))
        a[0] = 1.0  # active in the first bin only
        assert loss_transient_coverage(_record_from_arrays([a]), bins=2).item() == 2.0

    def test_bins_one_equals_activation_hinge(self):
        from repro.core.losses import loss_neuron_activation

        a = np.zeros((5, 1, 4))
        a[:, 0, :2] = 1.0
        record = _record_from_arrays([a])
        assert (
            loss_transient_coverage(record, bins=1).item()
            == loss_neuron_activation(record).item()
        )

    def test_more_bins_than_steps_clamped(self):
        a = np.ones((2, 1, 3))
        # 10 bins over 2 steps degrades to 2 bins, all active.
        assert loss_transient_coverage(_record_from_arrays([a]), bins=10).item() == 0.0

    def test_rejects_bad_bins(self):
        a = np.zeros((4, 1, 2))
        with pytest.raises(ShapeError):
            loss_transient_coverage(_record_from_arrays([a]), bins=0)


class TestConfigWiring:
    def test_defaults_off(self):
        config = TestGenConfig()
        assert not config.use_parametric_loss
        assert not config.use_transient_loss

    def test_noop_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            TestGenConfig(use_parametric_loss=True, parametric_loss_scale=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"parametric_loss_scale": 0.0},
            {"parametric_loss_scale": float("inf")},
            {"parametric_loss_margin": 0.0},
            {"transient_loss_bins": 0},
        ],
    )
    def test_degenerate_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TestGenConfig(**kwargs)

    def test_generation_runs_with_surrogates_enabled(self):
        from repro.core.generator import TestGenerator

        net = _net(2)
        config = TestGenConfig(
            use_parametric_loss=True,
            use_transient_loss=True,
            transient_loss_bins=2,
            steps_stage1=8,
            probe_steps=20,
            max_iterations=1,
            t_in_max=16,
        )
        generator = TestGenerator(net, config, np.random.default_rng(3))
        result = generator.generate()
        assert result.stimulus.duration_steps > 0
        assert np.isfinite(result.iterations[0].stage1_loss)
