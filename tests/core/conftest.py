"""Shared fixtures: a tiny trained network for core-algorithm tests."""

import numpy as np
import pytest

from repro.datasets import SHDLike
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.training import Trainer


@pytest.fixture(scope="session")
def tiny_dataset():
    return SHDLike(train_size=60, test_size=30, channels=24, steps=16, seed=0)


@pytest.fixture(scope="session")
def tiny_network(tiny_dataset):
    """A small trained 3-layer dense SNN (24 -> 16 -> 8 -> 20... scaled)."""
    spec = NetworkSpec(
        name="tiny",
        input_shape=tiny_dataset.input_shape,
        layers=(DenseSpec(out_features=16), DenseSpec(out_features=tiny_dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    net = build_network(spec, np.random.default_rng(0))
    Trainer(net, tiny_dataset, lr=0.03, batch_size=16).fit(
        epochs=4, rng=np.random.default_rng(1)
    )
    return net
