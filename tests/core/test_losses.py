"""Tests for the five loss functions (Eqs. 9-16): values on constructed
spike patterns and gradient flow to the input."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, stack
from repro.core.losses import (
    LossWeights,
    loss_neuron_activation,
    loss_output_activity,
    loss_output_constancy,
    loss_spike_minimization,
    loss_synapse_uniformity,
    loss_temporal_diversity,
    temporal_diversity,
)
from repro.errors import ShapeError
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, RecurrentSpec, build_network
from repro.snn.network import ForwardRecord


def _record_from_arrays(layers):
    """Build a ForwardRecord from plain (T, 1, N) arrays."""
    layer_spikes = []
    for arr in layers:
        layer_spikes.append([Tensor(arr[t]) for t in range(arr.shape[0])])
    return ForwardRecord(layer_spikes=layer_spikes, layer_names=[str(i) for i in range(len(layers))])


class TestL1OutputActivity:
    def test_zero_when_all_fire(self):
        out = np.zeros((4, 1, 3))
        out[0] = 1.0
        record = _record_from_arrays([out])
        assert loss_output_activity(record).item() == 0.0

    def test_counts_silent_neurons(self):
        out = np.zeros((4, 1, 3))
        out[:, 0, 0] = 1.0  # only neuron 0 fires
        record = _record_from_arrays([out])
        assert loss_output_activity(record).item() == 2.0

    def test_no_reward_for_extra_spikes(self):
        # Hinge saturates at zero: 5 spikes is no better than 1.
        busy = np.ones((5, 1, 2))
        quiet = np.zeros((5, 1, 2))
        quiet[0] = 1.0
        assert (
            loss_output_activity(_record_from_arrays([busy])).item()
            == loss_output_activity(_record_from_arrays([quiet])).item()
            == 0.0
        )

    def test_rejects_batched_record(self):
        out = np.zeros((4, 2, 3))
        with pytest.raises(ShapeError):
            loss_output_activity(_record_from_arrays([out]))


class TestL2NeuronActivation:
    def test_sums_over_layers(self):
        hidden = np.zeros((4, 1, 5))
        out = np.zeros((4, 1, 3))
        record = _record_from_arrays([hidden, out])
        assert loss_neuron_activation(record).item() == 8.0

    def test_mask_restricts(self):
        hidden = np.zeros((4, 1, 5))
        out = np.zeros((4, 1, 3))
        record = _record_from_arrays([hidden, out])
        masks = [np.array([True, False, False, False, False]), np.zeros(3, dtype=bool)]
        assert loss_neuron_activation(record, masks).item() == 1.0

    def test_none_mask_means_all(self):
        hidden = np.zeros((2, 1, 4))
        record = _record_from_arrays([hidden])
        assert loss_neuron_activation(record, [None]).item() == 4.0


class TestL3TemporalDiversity:
    def test_td_counts_transitions(self):
        arr = np.zeros((6, 1, 1))
        arr[[1, 3], 0, 0] = 1.0  # pattern 0 1 0 1 0 0 -> 4 transitions
        record = _record_from_arrays([arr])
        assert temporal_diversity(record, 0).data.tolist() == [4.0]

    def test_constant_train_has_zero_td(self):
        arr = np.ones((6, 1, 2))
        record = _record_from_arrays([arr])
        assert temporal_diversity(record, 0).data.tolist() == [0.0, 0.0]

    def test_hinge_at_td_min(self):
        arr = np.zeros((6, 1, 1))
        arr[[1, 3], 0, 0] = 1.0  # TD = 4
        record = _record_from_arrays([arr])
        assert loss_temporal_diversity(record, td_min=6).item() == 2.0
        assert loss_temporal_diversity(record, td_min=4).item() == 0.0

    def test_single_step_record(self):
        arr = np.ones((1, 1, 3))
        record = _record_from_arrays([arr])
        assert loss_temporal_diversity(record, td_min=2).item() == 6.0


class TestL4SynapseUniformity:
    def _net(self):
        spec = NetworkSpec(
            name="l4",
            input_shape=(4,),
            layers=(DenseSpec(out_features=3), DenseSpec(out_features=2)),
        )
        return build_network(spec, np.random.default_rng(0))

    def test_uniform_contributions_zero_variance(self):
        net = self._net()
        # Make all second-layer weights equal and all first-layer counts equal.
        net.modules[1].weight.data[...] = 0.5
        hidden = np.ones((4, 1, 3))  # every neuron spikes every step
        out = np.zeros((4, 1, 2))
        record = _record_from_arrays([hidden, out])
        assert loss_synapse_uniformity(record, net).item() == pytest.approx(0.0)

    def test_nonuniform_contributions_positive(self):
        net = self._net()
        net.modules[1].weight.data[...] = 0.5
        net.modules[1].weight.data[0, 0] = 5.0  # one dominant synapse
        hidden = np.ones((4, 1, 3))
        out = np.zeros((4, 1, 2))
        record = _record_from_arrays([hidden, out])
        assert loss_synapse_uniformity(record, net).item() > 0.0

    def test_zero_weights_excluded(self):
        net = self._net()
        net.modules[1].weight.data[...] = 0.5
        net.modules[1].weight.data[1, :] = 0.0  # dead synapses must not count
        hidden = np.ones((4, 1, 3))
        out = np.zeros((4, 1, 2))
        record = _record_from_arrays([hidden, out])
        assert loss_synapse_uniformity(record, net).item() == pytest.approx(0.0)

    def test_first_layer_excluded_by_default(self):
        # Single spiking layer network: no receiving layer -> loss 0.
        spec = NetworkSpec(name="one", input_shape=(4,), layers=(DenseSpec(out_features=2),))
        net = build_network(spec, np.random.default_rng(0))
        record = _record_from_arrays([np.ones((3, 1, 2))])
        assert loss_synapse_uniformity(record, net).item() == 0.0

    def test_include_first_layer_requires_counts(self):
        net = self._net()
        record = _record_from_arrays([np.ones((3, 1, 3)), np.zeros((3, 1, 2))])
        with pytest.raises(ShapeError):
            loss_synapse_uniformity(record, net, include_first_layer=True)

    def test_include_first_layer_adds_term(self):
        net = self._net()
        record = _record_from_arrays([np.ones((3, 1, 3)), np.zeros((3, 1, 2))])
        counts = Tensor(np.array([[3.0, 1.0, 0.0, 2.0]]))
        base = loss_synapse_uniformity(record, net).item()
        extended = loss_synapse_uniformity(
            record, net, include_first_layer=True, input_counts=counts
        ).item()
        assert extended >= base

    def test_recurrent_network_supported(self):
        spec = NetworkSpec(
            name="rec", input_shape=(4,),
            layers=(RecurrentSpec(out_features=3), DenseSpec(out_features=2)),
        )
        net = build_network(spec, np.random.default_rng(0))
        record = _record_from_arrays([np.ones((3, 1, 3)), np.zeros((3, 1, 2))])
        value = loss_synapse_uniformity(record, net).item()
        assert np.isfinite(value) and value >= 0.0


class TestL5AndConstancy:
    def test_l5_counts_hidden_spikes_only(self):
        hidden = np.ones((4, 1, 5))  # 20 spikes
        out = np.ones((4, 1, 3))  # must not count
        record = _record_from_arrays([hidden, out])
        assert loss_spike_minimization(record).item() == 20.0

    def test_l5_single_layer_zero(self):
        record = _record_from_arrays([np.ones((4, 1, 3))])
        assert loss_spike_minimization(record).item() == 0.0

    def test_constancy_zero_when_equal(self):
        out = np.zeros((4, 1, 3))
        out[1] = 1.0
        record = _record_from_arrays([out])
        assert loss_output_constancy(record, out).item() == 0.0

    def test_constancy_counts_differences(self):
        out = np.zeros((4, 1, 3))
        target = out.copy()
        target[2, 0, 1] = 1.0
        record = _record_from_arrays([out])
        assert loss_output_constancy(record, target).item() == 1.0


class TestGradientsReachInput:
    def test_all_losses_differentiable_through_network(self, tiny_network):
        from repro.autograd import functional as F

        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(0, 1, (8, 1, 24)), requires_grad=True)
        soft = F.gumbel_softmax(logits, 0.7, rng)
        binary = F.ste_binarize(soft)
        seq = [binary[t] for t in range(8)]
        record = tiny_network.forward(seq)
        input_counts = stack(seq).sum(axis=0)
        weights = LossWeights(1.0, 1.0, 1.0, 1.0)
        loss = weights.combined(record, tiny_network, td_min=2, input_counts=input_counts)
        loss = loss + loss_spike_minimization(record)
        loss.backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0.0


class TestLossWeights:
    def test_balanced_inverse_magnitude(self, tiny_network):
        rng = np.random.default_rng(1)
        seq = [Tensor((rng.random((1, 24)) < 0.3).astype(float)) for _ in range(8)]
        record = tiny_network.forward(seq)
        weights = LossWeights.balanced(record, tiny_network, td_min=2)
        for alpha in (weights.alpha1, weights.alpha2, weights.alpha3, weights.alpha4):
            assert alpha > 0.0
        # alpha_i * L_i == 1 whenever L_i above the floor
        value = loss_neuron_activation(record).item()
        if value > 1e-3:
            assert weights.alpha2 * value == pytest.approx(1.0)

    def test_floor_prevents_blowup(self, tiny_network):
        # All-zero record -> L1/L2 large, L3 large, L4 ~0 -> alpha4 = 1/floor
        record = _record_from_arrays(
            [np.zeros((4, 1, 16)), np.zeros((4, 1, 20))]
        )
        weights = LossWeights.balanced(record, tiny_network, td_min=2, floor=1e-3)
        assert weights.alpha4 <= 1e3 + 1e-9
