"""Tests for the L6 output-headroom extension (paper future work)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core import TestGenConfig, TestGenerator
from repro.core.losses import loss_output_headroom
from repro.errors import ConfigurationError
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.snn.network import ForwardRecord


def _record(output_array):
    spikes = [Tensor(output_array[t]) for t in range(output_array.shape[0])]
    return ForwardRecord(layer_spikes=[spikes], layer_names=["out"])


def _net(refrac=1, outputs=3):
    spec = NetworkSpec(
        name="h",
        input_shape=(4,),
        layers=(DenseSpec(out_features=outputs),),
        lif=LIFParameters(refractory_steps=refrac),
    )
    return build_network(spec, np.random.default_rng(0))


class TestHeadroomLoss:
    def test_zero_below_ceiling(self):
        net = _net(refrac=1)
        # T=8, refrac=1 -> ceiling 4, allowed 3 at margin 0.25.
        out = np.zeros((8, 1, 3))
        out[:3, 0, :] = 1.0  # 3 spikes each: exactly at the allowed level
        assert loss_output_headroom(_record(out), net, margin=0.25).item() == 0.0

    def test_penalises_saturation(self):
        net = _net(refrac=1)
        out = np.zeros((8, 1, 3))
        out[::2, 0, 0] = 1.0  # neuron 0 at the ceiling (4 spikes)
        value = loss_output_headroom(_record(out), net, margin=0.25).item()
        assert value == pytest.approx(1.0)  # (4 - 3)^2

    def test_quadratic_growth(self):
        net = _net(refrac=0)
        # refrac=0 -> ceiling 8, allowed 6 at margin 0.25.
        out = np.ones((8, 1, 3))  # counts 8: excess 2 each
        value = loss_output_headroom(_record(out), net, margin=0.25).item()
        assert value == pytest.approx(3 * 4.0)

    def test_margin_zero_only_penalises_above_ceiling(self):
        net = _net(refrac=1)
        out = np.zeros((8, 1, 3))
        out[::2, 0, :] = 1.0  # at ceiling
        assert loss_output_headroom(_record(out), net, margin=0.0).item() == 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TestGenConfig(headroom_margin=1.0)
        TestGenConfig(use_headroom_loss=True, headroom_margin=0.3)

    def test_generation_with_headroom_runs(self, tiny_network):
        config = TestGenConfig(
            steps_stage1=30, probe_steps=60, max_iterations=2, t_in_max=24,
            time_limit_s=60, use_headroom_loss=True,
        )
        result = TestGenerator(tiny_network, config, np.random.default_rng(0)).generate()
        assert result.num_chunks >= 1

    def test_headroom_reduces_output_saturation(self, tiny_network):
        """With L6 enabled, output spike counts stay further from the
        refractory ceiling than without it (same seed and budget)."""
        def run(use_headroom):
            config = TestGenConfig(
                steps_stage1=60, probe_steps=80, max_iterations=2, t_in_max=32,
                time_limit_s=120, use_headroom_loss=use_headroom, headroom_margin=0.4,
            )
            gen = TestGenerator(tiny_network, config, np.random.default_rng(5))
            result = gen.generate()
            out = tiny_network.run(result.stimulus.assembled())
            counts = out.sum(axis=0)[0]
            steps = out.shape[0]
            refrac = tiny_network.spiking_modules[-1].refractory_steps.reshape(-1)
            ceiling = np.ceil(steps / (refrac + 1.0))
            return float((counts / ceiling).max())

        with_l6 = run(True)
        without_l6 = run(False)
        assert with_l6 <= without_l6 + 0.05
