"""Tests for on-chip test storage: bit-packing and golden signatures."""

import numpy as np
import pytest

from repro.core.storage import StoredTest, pack_stimulus, unpack_stimulus
from repro.core.testset import TestStimulus
from repro.errors import TestGenerationError
from repro.faults.catalog import build_catalog
from repro.faults.injector import inject
from repro.faults.model import FaultModelConfig


def _stimulus(seed=0, shape=(6,)):
    rng = np.random.default_rng(seed)
    chunks = [
        (rng.random((5, 1) + shape) > 0.5).astype(float),
        (rng.random((7, 1) + shape) > 0.5).astype(float),
    ]
    return TestStimulus(chunks=chunks, input_shape=shape)


class TestPacking:
    def test_round_trip(self):
        stim = _stimulus()
        payloads, shapes = pack_stimulus(stim)
        restored = unpack_stimulus(payloads, shapes, stim.input_shape)
        for a, b in zip(stim.chunks, restored.chunks):
            assert np.array_equal(a, b)

    def test_packing_is_8x_smaller(self):
        stim = _stimulus()
        payloads, _ = pack_stimulus(stim)
        packed = sum(len(p) for p in payloads)
        raw_bits = sum(int(np.prod(c.shape)) for c in stim.chunks)
        assert packed <= raw_bits // 8 + len(stim.chunks)

    def test_conv_shaped_chunks(self):
        stim = _stimulus(shape=(2, 4, 4))
        payloads, shapes = pack_stimulus(stim)
        restored = unpack_stimulus(payloads, shapes, (2, 4, 4))
        assert restored.chunks[0].shape == (5, 1, 2, 4, 4)


class TestStoredTest:
    @pytest.fixture()
    def network(self, tiny_network):
        return tiny_network

    @pytest.fixture()
    def stored(self, network):
        rng = np.random.default_rng(1)
        chunks = [(rng.random((6, 1, 24)) > 0.5).astype(float) for _ in range(2)]
        stim = TestStimulus(chunks=chunks, input_shape=(24,))
        return StoredTest.build(network, stim)

    def test_healthy_device_passes(self, network, stored):
        assert stored.check(network, exact=True)
        assert stored.check(network, exact=False)

    def test_fault_fails_exact_check(self, network, stored):
        catalog = build_catalog(network)
        config = FaultModelConfig()
        # A saturated output neuron is always visible.
        fault = next(
            f for f in catalog.neuron_faults
            if f.module_index == network.spiking_indices[-1] and f.kind.value == "saturated"
        )
        with inject(network, fault, config):
            assert not stored.check(network, exact=True)
        assert stored.check(network, exact=True)  # restored afterwards

    def test_count_signature_detects_saturation(self, network, stored):
        catalog = build_catalog(network)
        fault = next(
            f for f in catalog.neuron_faults
            if f.module_index == network.spiking_indices[-1] and f.kind.value == "saturated"
        )
        with inject(network, fault, FaultModelConfig()):
            assert not stored.check(network, exact=False)

    def test_storage_accounting(self, stored):
        assert stored.storage_bytes >= sum(len(p) for p in stored.payloads)
        # Compact: well under the raw float64 stimulus size.
        raw = sum(int(np.prod(s)) * 8 for s in stored.shapes)
        assert stored.storage_bytes < raw / 8

    def test_save_load_round_trip(self, network, stored, tmp_path):
        path = str(tmp_path / "stored.npz")
        stored.save(path)
        loaded = StoredTest.load(path)
        assert loaded.golden_digest == stored.golden_digest
        assert np.array_equal(loaded.golden_counts, stored.golden_counts)
        assert loaded.check(network, exact=True)

    def test_load_rejects_empty(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        np.savez(path, nothing=np.zeros(1))
        with pytest.raises(TestGenerationError):
            StoredTest.load(path)
