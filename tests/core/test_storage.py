"""Tests for on-chip test storage: bit-packing, golden signatures, and
loaded-artifact validation (corrupt stimuli and fault lists fail loudly)."""

import numpy as np
import pytest

from repro.core.storage import StoredTest, pack_stimulus, unpack_stimulus
from repro.core.testset import TestStimulus, validate_stimulus_chunks
from repro.errors import ArtifactError, FaultModelError, ReproError, TestGenerationError
from repro.faults.catalog import build_catalog, validate_faults
from repro.faults.injector import inject
from repro.faults.model import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    SynapseFault,
    SynapseFaultKind,
)


def _stimulus(seed=0, shape=(6,)):
    rng = np.random.default_rng(seed)
    chunks = [
        (rng.random((5, 1) + shape) > 0.5).astype(float),
        (rng.random((7, 1) + shape) > 0.5).astype(float),
    ]
    return TestStimulus(chunks=chunks, input_shape=shape)


class TestPacking:
    def test_round_trip(self):
        stim = _stimulus()
        payloads, shapes = pack_stimulus(stim)
        restored = unpack_stimulus(payloads, shapes, stim.input_shape)
        for a, b in zip(stim.chunks, restored.chunks):
            assert np.array_equal(a, b)

    def test_packing_is_8x_smaller(self):
        stim = _stimulus()
        payloads, _ = pack_stimulus(stim)
        packed = sum(len(p) for p in payloads)
        raw_bits = sum(int(np.prod(c.shape)) for c in stim.chunks)
        assert packed <= raw_bits // 8 + len(stim.chunks)

    def test_conv_shaped_chunks(self):
        stim = _stimulus(shape=(2, 4, 4))
        payloads, shapes = pack_stimulus(stim)
        restored = unpack_stimulus(payloads, shapes, (2, 4, 4))
        assert restored.chunks[0].shape == (5, 1, 2, 4, 4)


class TestStoredTest:
    @pytest.fixture()
    def network(self, tiny_network):
        return tiny_network

    @pytest.fixture()
    def stored(self, network):
        rng = np.random.default_rng(1)
        chunks = [(rng.random((6, 1, 24)) > 0.5).astype(float) for _ in range(2)]
        stim = TestStimulus(chunks=chunks, input_shape=(24,))
        return StoredTest.build(network, stim)

    def test_healthy_device_passes(self, network, stored):
        assert stored.check(network, exact=True)
        assert stored.check(network, exact=False)

    def test_fault_fails_exact_check(self, network, stored):
        catalog = build_catalog(network)
        config = FaultModelConfig()
        # A saturated output neuron is always visible.
        fault = next(
            f for f in catalog.neuron_faults
            if f.module_index == network.spiking_indices[-1] and f.kind.value == "saturated"
        )
        with inject(network, fault, config):
            assert not stored.check(network, exact=True)
        assert stored.check(network, exact=True)  # restored afterwards

    def test_count_signature_detects_saturation(self, network, stored):
        catalog = build_catalog(network)
        fault = next(
            f for f in catalog.neuron_faults
            if f.module_index == network.spiking_indices[-1] and f.kind.value == "saturated"
        )
        with inject(network, fault, FaultModelConfig()):
            assert not stored.check(network, exact=False)

    def test_storage_accounting(self, stored):
        assert stored.storage_bytes >= sum(len(p) for p in stored.payloads)
        # Compact: well under the raw float64 stimulus size.
        raw = sum(int(np.prod(s)) * 8 for s in stored.shapes)
        assert stored.storage_bytes < raw / 8

    def test_save_load_round_trip(self, network, stored, tmp_path):
        path = str(tmp_path / "stored.npz")
        stored.save(path)
        loaded = StoredTest.load(path)
        assert loaded.golden_digest == stored.golden_digest
        assert np.array_equal(loaded.golden_counts, stored.golden_counts)
        assert loaded.check(network, exact=True)

    def test_load_rejects_empty(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        np.savez(path, nothing=np.zeros(1))
        with pytest.raises(TestGenerationError):
            StoredTest.load(path)


class TestArtifactValidation:
    """Loaded artifacts are validated before use; every violation is a
    typed :class:`ReproError` subclass, not a silent garbage campaign."""

    def test_valid_chunks_pass(self):
        validate_stimulus_chunks(_stimulus().chunks, "test")

    def test_non_binary_chunk_rejected(self):
        chunks = _stimulus().chunks
        chunks[1][0, 0, 2] = 0.5
        with pytest.raises(ArtifactError, match="non-binary"):
            validate_stimulus_chunks(chunks, "test")

    def test_non_finite_chunk_rejected(self):
        chunks = _stimulus().chunks
        chunks[0][1, 0, 3] = np.nan
        with pytest.raises(ArtifactError, match="non-finite"):
            validate_stimulus_chunks(chunks, "test")

    def test_stimulus_load_rejects_corrupt_values(self, tmp_path):
        path = str(tmp_path / "stim.npz")
        bad = np.full((4, 1, 6), 3.0)  # uint8-representable but non-binary
        np.savez(path, chunk0=bad.astype(np.uint8))
        with pytest.raises(ArtifactError):
            TestStimulus.load(path, (6,))

    def test_stimulus_save_load_round_trip_validates_clean(self, tmp_path):
        stim = _stimulus()
        path = str(tmp_path / "stim.npz")
        stim.save(path)
        loaded = TestStimulus.load(path, stim.input_shape)
        for a, b in zip(stim.chunks, loaded.chunks):
            assert np.array_equal(a, b)

    def test_torn_payload_rejected(self):
        stim = _stimulus()
        payloads, shapes = pack_stimulus(stim)
        torn = [payloads[0], payloads[1][:-2]]  # drop trailing bytes
        with pytest.raises(ArtifactError, match="torn"):
            unpack_stimulus(torn, shapes, stim.input_shape)

    def test_errors_are_typed(self):
        assert issubclass(ArtifactError, ReproError)
        assert issubclass(FaultModelError, ReproError)


class TestFaultDescriptorValidation:
    def test_catalog_is_valid_by_construction(self, tiny_network):
        catalog = build_catalog(tiny_network)
        validate_faults(tiny_network, catalog.faults)

    def test_bad_module_index_rejected(self, tiny_network):
        fault = NeuronFault(
            module_index=99, neuron_index=0, kind=NeuronFaultKind.DEAD
        )
        with pytest.raises(FaultModelError, match="module 99"):
            validate_faults(tiny_network, [fault])

    def test_out_of_range_neuron_rejected(self, tiny_network):
        module_index = int(tiny_network.spiking_indices[0])
        count = tiny_network.modules[module_index].neuron_count
        fault = NeuronFault(
            module_index=module_index, neuron_index=count, kind=NeuronFaultKind.DEAD
        )
        with pytest.raises(FaultModelError, match=f"{count} neurons"):
            validate_faults(tiny_network, [fault])

    def test_out_of_range_weight_rejected(self, tiny_network):
        module_index = int(tiny_network.spiking_indices[0])
        size = int(tiny_network.modules[module_index].parameters()[0].size)
        fault = SynapseFault(
            module_index=module_index,
            parameter_index=0,
            weight_index=size,
            kind=SynapseFaultKind.DEAD,
        )
        with pytest.raises(FaultModelError, match=f"{size} weights"):
            validate_faults(tiny_network, [fault])

    def test_out_of_range_parameter_rejected(self, tiny_network):
        # parameter_index 1 is legal for the descriptor (recurrent weight)
        # but DenseLIF modules expose a single parameter.
        module_index = int(tiny_network.spiking_indices[0])
        fault = SynapseFault(
            module_index=module_index,
            parameter_index=1,
            weight_index=0,
            kind=SynapseFaultKind.DEAD,
        )
        with pytest.raises(FaultModelError, match="parameter 1"):
            validate_faults(tiny_network, [fault])

    def test_out_of_range_bit_rejected(self, tiny_network):
        # bit 12 is a legal descriptor (below MAX_WEIGHT_BITS) but exceeds
        # the configured 8-bit word — a replayed catalog built under a
        # wider word must be rejected, not silently aliased mod 8.
        from repro.faults.model import FaultModelConfig

        module_index = int(tiny_network.spiking_indices[0])
        fault = SynapseFault(
            module_index=module_index,
            parameter_index=0,
            weight_index=0,
            kind=SynapseFaultKind.BITFLIP,
            bit=12,
        )
        validate_faults(tiny_network, [fault])  # no config: descriptor-only
        with pytest.raises(FaultModelError, match="only 8 bits wide"):
            validate_faults(
                tiny_network, [fault], config=FaultModelConfig(weight_bits=8)
            )
        validate_faults(
            tiny_network, [fault], config=FaultModelConfig(weight_bits=16)
        )

    def test_window_beyond_test_rejected(self, tiny_network):
        # A transient window starting at or after the test's end can never
        # activate — certainly a unit mismatch in a hand-built catalog.
        module_index = int(tiny_network.spiking_indices[0])
        fault = NeuronFault(
            module_index=module_index,
            neuron_index=0,
            kind=NeuronFaultKind.DEAD,
            window=(10, 14),
        )
        validate_faults(tiny_network, [fault])  # no duration: window unchecked
        with pytest.raises(FaultModelError, match="never activates"):
            validate_faults(tiny_network, [fault], duration_steps=10)
        validate_faults(tiny_network, [fault], duration_steps=11)

    def test_verify_coverage_rejects_mismatched_faults(self, tiny_network):
        from repro.core.coverage import verify_coverage

        stim = TestStimulus(
            chunks=[np.zeros((4, 1, 24))], input_shape=(24,)
        )
        fault = NeuronFault(
            module_index=99, neuron_index=0, kind=NeuronFaultKind.DEAD
        )
        with pytest.raises(FaultModelError):
            verify_coverage(tiny_network, stim, [fault])

    def test_verify_coverage_rejects_window_beyond_test(self, tiny_network):
        # The campaign entry point passes the stimulus duration through to
        # validate_faults, so a never-active transient fails fast instead
        # of silently counting as undetected for the whole campaign.
        from repro.core.coverage import verify_coverage

        stim = TestStimulus(chunks=[np.zeros((4, 1, 24))], input_shape=(24,))
        module_index = int(tiny_network.spiking_indices[0])
        fault = NeuronFault(
            module_index=module_index,
            neuron_index=0,
            kind=NeuronFaultKind.DEAD,
            window=(stim.duration_steps, stim.duration_steps + 4),
        )
        with pytest.raises(FaultModelError, match="never activates"):
            verify_coverage(tiny_network, stim, [fault])
