"""Tests for the input parameterization, duration probe, and stage loop."""

import numpy as np
import pytest

from repro.core import InputParameterization, TestGenConfig, find_minimum_duration
from repro.core.losses import loss_output_activity
from repro.core.stage import run_stage
from repro.errors import ConfigurationError, TestGenerationError


class TestInputParameterization:
    def _param(self, duration=6, seed=0):
        return InputParameterization((5,), duration, np.random.default_rng(seed))

    def test_logit_shape(self):
        param = self._param()
        assert param.logits.shape == (6, 1, 5)
        assert param.duration == 6

    def test_sample_binary(self):
        param = self._param()
        seq = param.sample(0.7)
        assert len(seq) == 6
        for tensor in seq:
            assert tensor.shape == (1, 5)
            assert set(np.unique(tensor.data)).issubset({0.0, 1.0})

    def test_sample_gradient_reaches_logits(self):
        param = self._param()
        seq = param.sample(0.7)
        total = seq[0].sum()
        for tensor in seq[1:]:
            total = total + tensor.sum()
        total.backward()
        assert param.logits.grad is not None

    def test_hard_deterministic(self):
        param = self._param()
        assert np.array_equal(param.hard(), param.hard())
        assert param.hard().shape == (6, 1, 5)

    def test_hard_thresholds_at_zero(self):
        param = self._param()
        param.logits.data[...] = -1.0
        param.logits.data[0, 0, 0] = 1.0
        hard = param.hard()
        assert hard.sum() == 1.0
        assert hard[0, 0, 0] == 1.0

    def test_grow_appends(self):
        param = self._param()
        before = param.logits.data.copy()
        param.grow(3)
        assert param.duration == 9
        assert np.array_equal(param.logits.data[:6], before)

    def test_grow_requires_positive(self):
        with pytest.raises(ConfigurationError):
            self._param().grow(0)

    def test_load_hard_same_duration(self):
        param = self._param()
        stimulus = np.zeros((6, 1, 5))
        stimulus[2, 0, 3] = 1.0
        param.load_hard(stimulus)
        assert np.array_equal(param.hard(), stimulus)

    def test_load_hard_new_duration(self):
        param = self._param()
        stimulus = np.ones((9, 1, 5))
        param.load_hard(stimulus)
        assert param.duration == 9
        assert np.array_equal(param.hard(), stimulus)

    def test_load_hard_bad_rank(self):
        param = self._param()
        with pytest.raises(ConfigurationError):
            param.load_hard(np.ones((6, 5)))

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            InputParameterization((5,), 0, np.random.default_rng(0))


class TestRunStage:
    def test_loss_improves(self, tiny_network):
        config = TestGenConfig()
        param = InputParameterization((24,), 8, np.random.default_rng(0))
        result = run_stage(
            tiny_network,
            param,
            lambda record, seq: loss_output_activity(record),
            steps=60,
            config=config,
        )
        assert result.best_loss <= result.loss_history[0]
        assert result.steps_run == 60

    def test_best_stimulus_binary(self, tiny_network):
        config = TestGenConfig()
        param = InputParameterization((24,), 8, np.random.default_rng(0))
        result = run_stage(
            tiny_network, param,
            lambda record, seq: loss_output_activity(record),
            steps=10, config=config,
        )
        assert set(np.unique(result.best_stimulus)).issubset({0.0, 1.0})
        assert result.best_stimulus.shape == (8, 1, 24)

    def test_growth_on_no_progress(self, tiny_network):
        config = TestGenConfig(beta=2, max_growths=2, t_in_max=64)
        param = InputParameterization((24,), 4, np.random.default_rng(0))
        result = run_stage(
            tiny_network, param,
            lambda record, seq: loss_output_activity(record),
            steps=5, config=config,
            progress_check=lambda stimulus: False,  # force growth every round
        )
        assert result.growths == 2
        # beta doubles: 4 + 2 + 4 = 10 steps final duration
        assert param.duration == 10

    def test_growth_respects_cap(self, tiny_network):
        config = TestGenConfig(beta=8, max_growths=5, t_in_max=10)
        param = InputParameterization((24,), 4, np.random.default_rng(0))
        result = run_stage(
            tiny_network, param,
            lambda record, seq: loss_output_activity(record),
            steps=3, config=config,
            progress_check=lambda stimulus: False,
        )
        assert param.duration <= 10

    def test_no_growth_without_progress_check(self, tiny_network):
        config = TestGenConfig(beta=2, max_growths=3)
        param = InputParameterization((24,), 4, np.random.default_rng(0))
        result = run_stage(
            tiny_network, param,
            lambda record, seq: loss_output_activity(record),
            steps=4, config=config,
        )
        assert result.growths == 0

    def test_deadline_stops_early(self, tiny_network):
        import time

        config = TestGenConfig()
        param = InputParameterization((24,), 8, np.random.default_rng(0))
        result = run_stage(
            tiny_network, param,
            lambda record, seq: loss_output_activity(record),
            steps=10_000, config=config,
            deadline=time.perf_counter() + 0.3,
        )
        assert result.timed_out
        assert result.steps_run < 10_000


class TestFindMinimumDuration:
    def test_finds_duration(self, tiny_network):
        config = TestGenConfig(t_in_start=4, t_in_max=64, probe_steps=120)
        duration = find_minimum_duration(tiny_network, config, np.random.default_rng(0))
        assert 4 <= duration <= 64

    def test_raises_for_dead_outputs(self, tiny_dataset):
        from repro.snn import DenseSpec, NetworkSpec, build_network

        spec = NetworkSpec(
            name="dead", input_shape=(24,), layers=(DenseSpec(out_features=4),)
        )
        net = build_network(spec, np.random.default_rng(0))
        for p in net.parameters():
            p.data[...] = 0.0  # nothing can ever fire
        config = TestGenConfig(t_in_start=4, t_in_max=8, probe_steps=5)
        with pytest.raises(TestGenerationError):
            find_minimum_duration(net, config, np.random.default_rng(0), strict=True)

    def test_nonstrict_falls_back_to_cap(self, tiny_dataset):
        from repro.snn import DenseSpec, NetworkSpec, build_network

        spec = NetworkSpec(
            name="dead", input_shape=(24,), layers=(DenseSpec(out_features=4),)
        )
        net = build_network(spec, np.random.default_rng(0))
        for p in net.parameters():
            p.data[...] = 0.0
        config = TestGenConfig(t_in_start=4, t_in_max=8, probe_steps=5)
        messages = []
        duration = find_minimum_duration(
            net, config, np.random.default_rng(0), log=messages.append
        )
        assert duration == 8
        assert any("falling back" in m for m in messages)
