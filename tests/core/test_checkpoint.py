"""Checkpoint container and generation-resume guarantees.

Three layers of pinning:

1. The binary container: deterministic bytes (save -> load -> save is
   byte-identical), and *every* corruption — truncation, bit flips, bad
   magic, garbage — raises a typed :class:`~repro.errors.CheckpointError`
   (property-tested with Hypothesis).
2. :class:`GeneratorCheckpoint` round-trips the full generator state.
3. End to end: a generation interrupted after iteration *k* and resumed
   produces stimuli, losses, and activation coverage *bit-identical* to an
   uninterrupted run — on the fused float64, fused float32, and legacy
   elementary paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    GeneratorCheckpoint,
    MAGIC,
    deserialize_checkpoint,
    generator_fingerprint,
    load_checkpoint,
    save_checkpoint,
    serialize_checkpoint,
)
from repro.core.config import TestGenConfig
from repro.core.generator import TestGenerator
from repro.errors import ChaosError, CheckpointError, ConfigurationError
from repro.utils import chaos


class TestContainer:
    def test_round_trip(self, tmp_path):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([True, False, True]),
            "empty": np.zeros((0, 5), dtype=np.int32),
        }
        meta = {"kind": "generator", "nested": {"x": 1, "y": [1.5, 2.5]}}
        path = tmp_path / "c.ckpt"
        save_checkpoint(str(path), arrays, meta)
        loaded_arrays, loaded_meta = load_checkpoint(str(path))
        assert set(loaded_arrays) == set(arrays)
        for name in arrays:
            assert loaded_arrays[name].dtype == arrays[name].dtype
            assert np.array_equal(loaded_arrays[name], arrays[name])
        assert loaded_meta == meta

    def test_serialization_is_deterministic(self):
        arrays = {"z": np.ones(3), "a": np.zeros((2, 2))}
        meta = {"b": 1, "a": 2}
        first = serialize_checkpoint(arrays, meta)
        # Same contents with different dict insertion order.
        second = serialize_checkpoint(
            {"a": np.zeros((2, 2)), "z": np.ones(3)}, {"a": 2, "b": 1}
        )
        assert first == second

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_bad_magic_raises(self):
        with pytest.raises(CheckpointError):
            deserialize_checkpoint(b"NOT-A-CKPT" + b"\x00" * 64)

    def test_numpy_scalars_in_meta(self, tmp_path):
        path = tmp_path / "c.ckpt"
        meta = {"i": np.int64(7), "f": np.float64(0.5), "b": np.bool_(True)}
        save_checkpoint(str(path), {}, meta)
        _, loaded = load_checkpoint(str(path))
        assert loaded == {"i": 7, "f": 0.5, "b": True}


_meta_values = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.booleans(),
)
_arrays = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
    ),
    st.builds(
        lambda shape, seed: np.random.default_rng(seed).random(shape),
        shape=st.tuples(st.integers(0, 4), st.integers(0, 4)),
        seed=st.integers(0, 2**31 - 1),
    ),
    max_size=4,
)
_metas = st.dictionaries(st.text(max_size=10), _meta_values, max_size=4)


class TestContainerProperties:
    @given(arrays=_arrays, meta=_metas)
    @settings(max_examples=40, deadline=None)
    def test_save_load_save_identical_bytes(self, arrays, meta):
        payload = serialize_checkpoint(arrays, meta)
        loaded_arrays, loaded_meta = deserialize_checkpoint(payload)
        assert serialize_checkpoint(loaded_arrays, loaded_meta) == payload

    @given(
        arrays=_arrays,
        meta=_metas,
        cut=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_always_raises(self, arrays, meta, cut):
        payload = serialize_checkpoint(arrays, meta)
        truncated = payload[: max(0, len(payload) - 1 - cut)]
        with pytest.raises(CheckpointError):
            deserialize_checkpoint(truncated)

    @given(
        arrays=_arrays,
        meta=_metas,
        position=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_flip_always_raises(self, arrays, meta, position, flip):
        payload = bytearray(serialize_checkpoint(arrays, meta))
        payload[position % len(payload)] ^= flip
        with pytest.raises(CheckpointError):
            deserialize_checkpoint(bytes(payload))

    @given(garbage=st.binary(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_garbage_never_parses(self, garbage):
        # Exclude the astronomically-unlikely case of valid container bytes.
        if garbage.startswith(MAGIC):
            garbage = b"X" + garbage
        with pytest.raises(CheckpointError):
            deserialize_checkpoint(garbage)


class TestGeneratorCheckpointRoundTrip:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        checkpoint = GeneratorCheckpoint(
            fingerprint="f" * 64,
            t_in_min=6,
            elapsed_s=12.5,
            rng_state=rng.bit_generator.state,
            chunks=[(rng.random((6, 1, 4)) > 0.5).astype(np.float64) for _ in range(2)],
            activated=[np.array([True, False, True]), np.zeros(5, dtype=bool)],
            reports=[
                {
                    "index": 0,
                    "duration": 6,
                    "stage1_loss": 1.25,
                    "stage2_loss": float("nan"),
                    "stage2_adopted": False,
                    "new_activations": 3,
                    "activated_total": 3,
                    "growths": 0,
                    "stage1_s": 0.0,
                    "stage2_s": 0.0,
                    "bookkeeping_s": 0.0,
                }
            ],
        )
        path = tmp_path / "g.ckpt"
        checkpoint.save(str(path))
        loaded = GeneratorCheckpoint.load(str(path))
        assert loaded.fingerprint == checkpoint.fingerprint
        assert loaded.t_in_min == checkpoint.t_in_min
        assert loaded.elapsed_s == checkpoint.elapsed_s
        assert loaded.rng_state == checkpoint.rng_state
        assert loaded.iterations_done == 1
        for a, b in zip(loaded.chunks, checkpoint.chunks):
            assert a.dtype == b.dtype and np.array_equal(a, b)
        for a, b in zip(loaded.activated, checkpoint.activated):
            assert a.dtype == np.bool_ and np.array_equal(a, b)
        assert np.isnan(loaded.reports[0]["stage2_loss"])
        assert loaded.reports[0]["new_activations"] == 3

    def test_rng_state_restores_stream(self, tmp_path):
        rng = np.random.default_rng(11)
        rng.random(17)  # advance
        checkpoint = GeneratorCheckpoint(
            fingerprint="f" * 64,
            t_in_min=4,
            elapsed_s=0.0,
            rng_state=rng.bit_generator.state,
        )
        expected = rng.random(8)
        path = tmp_path / "g.ckpt"
        checkpoint.save(str(path))
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = GeneratorCheckpoint.load(str(path)).rng_state
        assert np.array_equal(fresh.random(8), expected)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(str(path), {}, {"kind": "detect"})
        with pytest.raises(CheckpointError):
            GeneratorCheckpoint.load(str(path))


def _quick_config(**overrides):
    base = dict(
        t_in_min=6,
        steps_stage1=12,
        steps_stage2=6,
        max_iterations=3,
        stall_iterations=2,
        time_limit_s=600.0,
    )
    base.update(overrides)
    return TestGenConfig(**base)


def _assert_generation_equal(reference, result):
    assert len(result.stimulus.chunks) == len(reference.stimulus.chunks)
    for a, b in zip(result.stimulus.chunks, reference.stimulus.chunks):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    assert result.t_in_min == reference.t_in_min
    assert len(result.iterations) == len(reference.iterations)
    for got, want in zip(result.iterations, reference.iterations):
        assert got.duration == want.duration
        assert got.new_activations == want.new_activations
        assert got.activated_total == want.activated_total
        assert got.stage2_adopted == want.stage2_adopted
        assert got.stage1_loss == want.stage1_loss
        assert got.stage2_loss == want.stage2_loss or (
            np.isnan(got.stage2_loss) and np.isnan(want.stage2_loss)
        )
    assert result.activated_fraction == reference.activated_fraction
    for a, b in zip(result.activated_per_layer, reference.activated_per_layer):
        assert np.array_equal(a, b)


@pytest.mark.parametrize(
    "path_config",
    [
        pytest.param({"fused_bptt": True, "dtype": "float64"}, id="fused-f64"),
        pytest.param({"fused_bptt": True, "dtype": "float32"}, id="fused-f32"),
        pytest.param({"fused_bptt": False, "dtype": "float64"}, id="legacy-f64"),
    ],
)
class TestGenerationResume:
    def test_interrupt_resume_bit_identical(
        self, tiny_network, tmp_path, path_config
    ):
        """Kill generation right after the iteration-1 checkpoint, resume,
        and require the final output bit-identical to an uninterrupted
        run — chunks, losses, activation coverage, reports."""
        config = _quick_config(**path_config)

        def run(**kwargs):
            return TestGenerator(
                tiny_network, config, rng=np.random.default_rng(7), **kwargs
            ).generate()

        reference = run()
        assert len(reference.stimulus.chunks) >= 2  # interrupt mid-run below

        path = tmp_path / "generation.ckpt"
        with chaos.installed(chaos.ChaosPolicy.parse("raise@generator-iteration:1")):
            with pytest.raises(ChaosError):
                run(checkpoint_path=str(path))
        assert path.exists()
        resumed = run(checkpoint_path=str(path), resume=True)
        _assert_generation_equal(reference, resumed)
        # Budget accounting carried over from the interrupted run.
        assert resumed.runtime_s > 0

    def test_uninterrupted_checkpointed_run_identical(
        self, tiny_network, tmp_path, path_config
    ):
        """Checkpointing itself must not perturb generation."""
        config = _quick_config(**path_config)
        reference = TestGenerator(
            tiny_network, config, rng=np.random.default_rng(7)
        ).generate()
        checkpointed = TestGenerator(
            tiny_network,
            config,
            rng=np.random.default_rng(7),
            checkpoint_path=str(tmp_path / "generation.ckpt"),
        ).generate()
        _assert_generation_equal(reference, checkpointed)


class TestGenerationResumeGuards:
    def test_resume_refuses_different_config(self, tiny_network, tmp_path):
        path = tmp_path / "generation.ckpt"
        TestGenerator(
            tiny_network,
            _quick_config(max_iterations=1),
            rng=np.random.default_rng(7),
            checkpoint_path=str(path),
        ).generate()
        with pytest.raises(CheckpointError):
            TestGenerator(
                tiny_network,
                _quick_config(max_iterations=1, steps_stage1=13),
                rng=np.random.default_rng(7),
                checkpoint_path=str(path),
                resume=True,
            ).generate()

    def test_resume_of_finished_run_returns_same_result(
        self, tiny_network, tmp_path
    ):
        path = tmp_path / "generation.ckpt"
        config = _quick_config()
        reference = TestGenerator(
            tiny_network, config, rng=np.random.default_rng(7),
            checkpoint_path=str(path),
        ).generate()
        resumed = TestGenerator(
            tiny_network, config, rng=np.random.default_rng(7),
            checkpoint_path=str(path), resume=True,
        ).generate()
        _assert_generation_equal(reference, resumed)

    def test_resume_without_checkpoint_starts_fresh(self, tiny_network, tmp_path):
        config = _quick_config(max_iterations=1)
        result = TestGenerator(
            tiny_network,
            config,
            rng=np.random.default_rng(7),
            checkpoint_path=str(tmp_path / "missing.ckpt"),
            resume=True,
        ).generate()
        assert result.num_chunks == 1

    def test_checkpoint_every_validation(self):
        with pytest.raises(ConfigurationError):
            TestGenConfig(checkpoint_every=0)

    def test_sparser_checkpoints_still_resume_exactly(
        self, tiny_network, tmp_path
    ):
        """checkpoint_every=2 checkpoints at iterations 2, 4, ... — a kill
        between checkpoints re-runs the missing iterations exactly."""
        config = _quick_config(checkpoint_every=2)
        reference = TestGenerator(
            tiny_network, config, rng=np.random.default_rng(7)
        ).generate()
        path = tmp_path / "generation.ckpt"
        with chaos.installed(chaos.ChaosPolicy.parse("raise@generator-iteration:2")):
            with pytest.raises(ChaosError):
                TestGenerator(
                    tiny_network,
                    config,
                    rng=np.random.default_rng(7),
                    checkpoint_path=str(path),
                ).generate()
        resumed = TestGenerator(
            tiny_network,
            config,
            rng=np.random.default_rng(7),
            checkpoint_path=str(path),
            resume=True,
        ).generate()
        _assert_generation_equal(reference, resumed)
