"""Tests for the numerics guard: detection, rollback-and-restart recovery,
NaN injection, structural reachability triage, and health reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor
from repro.core.config import TestGenConfig
from repro.core.generator import TestGenerator
from repro.core.guard import (
    GUARD_ENV,
    GenerationHealth,
    NanInjector,
    NumericsGuard,
    all_finite,
    injecting,
    resolve_policy,
    structural_unactivatable,
)
from repro.core.input_param import InputParameterization
from repro.core.stage import run_stage
from repro.errors import ConfigurationError, NumericsError
from repro.snn.layers import ConvLIF, DenseLIF, RecurrentLIF
from repro.snn.network import SNN
from repro.snn.neuron import LIFParameters

PARAMS = LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1)


def _dense_net(*weights):
    """SNN of DenseLIF layers with exactly the given (in, out) weights."""
    layers = []
    for w in weights:
        w = np.asarray(w, dtype=np.float64)
        layer = DenseLIF(w.shape[0], w.shape[1], PARAMS)
        layer.weight.data[...] = w
        layers.append(layer)
    return SNN(layers, input_shape=(weights[0].shape[0],))


def _easy_net():
    """Every neuron activates from any input spike (all weights +2)."""
    return _dense_net(np.full((4, 3), 2.0), np.full((3, 2), 2.0))


def _quick_config(**overrides):
    base = dict(
        t_in_min=4,
        steps_stage1=10,
        steps_stage2=5,
        max_iterations=3,
        stall_iterations=2,
        time_limit_s=600.0,
    )
    base.update(overrides)
    return TestGenConfig(**base)


# ----------------------------------------------------------------------
class TestResolvePolicy:
    def test_default_is_recover(self, monkeypatch):
        monkeypatch.delenv(GUARD_ENV, raising=False)
        assert resolve_policy(None) == "recover"

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV, "strict")
        assert resolve_policy(None) == "strict"

    def test_explicit_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV, "strict")
        assert resolve_policy("recover") == "recover"
        assert resolve_policy("off") == "off"

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV, "lenient")
        with pytest.raises(ConfigurationError):
            resolve_policy(None)

    def test_config_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            TestGenConfig(guard_policy="lenient")


class TestAllFinite:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    def test_bounded_finite_arrays_pass(self, values):
        assert all_finite(np.array(values)) is True

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e100, max_value=1e100, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        st.integers(min_value=0, max_value=63),
        st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    def test_any_nonfinite_position_detected(self, values, position, bad):
        arr = np.array(values)
        arr[position % arr.size] = bad
        assert all_finite(arr) is False

    def test_cancelling_infinities_detected(self):
        # inf + (-inf) sums to NaN, so the sum trick still flags it.
        assert all_finite(np.array([np.inf, -np.inf])) is False

    def test_overflowing_finite_sum_flagged_as_overflow(self):
        assert all_finite(np.full(4, 1e308)) is False


class TestNanInjector:
    def test_parse_and_fire_once(self):
        injector = NanInjector.parse("stage1-loss@0:3")
        assert injector.fire("stage1-loss", 0, 3) is True
        assert injector.fire("stage1-loss", 0, 3) is False  # consumed

    def test_wildcards(self):
        injector = NanInjector.parse("stage2-grad@*:*")
        assert injector.fire("stage2-grad", 7, 42) is True
        assert injector.fire("stage2-grad", 0, 0) is False  # one spec, fired

    def test_mismatched_coordinates_do_not_fire(self):
        injector = NanInjector.parse("stage1-loss@1:2")
        assert injector.fire("stage1-loss", 0, 2) is False
        assert injector.fire("stage1-grad", 1, 2) is False
        assert injector.fire("stage1-loss", 1, 2) is True

    def test_multiple_specs(self):
        injector = NanInjector.parse("stage1-loss@0:1, stage2-grad@0:0")
        assert injector.fire("stage2-grad", 0, 0) is True
        assert injector.fire("stage1-loss", 0, 1) is True

    @pytest.mark.parametrize("text", ["", "stage1-loss", "stage1-loss@3", "x@y:z"])
    def test_bad_specs_raise(self, text):
        with pytest.raises(ConfigurationError):
            NanInjector.parse(text)


# ----------------------------------------------------------------------
class TestNumericsGuardUnits:
    def test_strict_raises_at_detection_point(self):
        guard = NumericsGuard(policy="strict")
        with pytest.raises(NumericsError):
            guard.check_loss(float("nan"))

    def test_off_is_a_no_op(self):
        guard = NumericsGuard(policy="off")
        assert guard.check_loss(float("nan")) is True
        assert not guard.events and not guard.pending

    def test_recover_records_and_drains(self):
        guard = NumericsGuard(policy="recover")
        assert guard.check_loss(float("inf")) is False
        assert guard.pending
        events = guard.drain()
        assert len(events) == 1 and events[0].kind == "nonfinite"
        assert not guard.pending
        assert len(guard.events) == 1  # permanent log keeps it

    def test_grad_check_vetoes_adam_update(self):
        param = Tensor(np.ones(4), requires_grad=True)
        param.grad = np.array([1.0, np.nan, 1.0, 1.0])
        optimizer = Adam([param], lr=0.1)
        guard = NumericsGuard(policy="recover")
        optimizer.pre_step_hook = guard.check_grads
        assert optimizer.step() is False
        assert np.array_equal(param.data, np.ones(4))  # no update applied
        assert all(np.all(m == 0.0) for m in optimizer._m)  # moments clean
        assert guard.pending

    def test_adam_reset_state(self):
        param = Tensor(np.ones(3), requires_grad=True)
        param.grad = np.ones(3)
        optimizer = Adam([param], lr=0.1)
        optimizer.step()
        assert optimizer._step_count == 1
        optimizer.reset_state()
        assert optimizer._step_count == 0
        assert all(np.all(m == 0.0) for m in optimizer._m)
        assert all(np.all(v == 0.0) for v in optimizer._v)

    def test_observe_currents_catches_silent_nan(self):
        # NaN currents produce zero spikes and a finite loss (NaN >=
        # threshold is False) — the currents hook is the only detector.
        guard = NumericsGuard(policy="recover")
        guard.observe_currents(np.array([[0.5, np.nan]]))
        assert guard.pending

    def test_divergence_detection(self):
        guard = NumericsGuard(policy="recover", divergence_window=3)
        history = [1.0, 2.0, 5e6, 6e6, 7e6]
        assert guard.check_divergence(history, best_loss=1.0) is False
        assert guard.events[-1].kind == "divergence"

    def test_divergence_needs_full_window(self):
        guard = NumericsGuard(policy="recover", divergence_window=5)
        assert guard.check_divergence([1e9, 1e9], best_loss=1.0) is True

    def test_tensor_isfinite_all(self):
        assert Tensor(np.ones(3)).isfinite_all() is True
        assert Tensor(np.array([1.0, np.inf])).isfinite_all() is False
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.isfinite_all(grad=True) is True  # missing grad buffer
        t.grad = np.array([np.nan, 0.0, 0.0])
        assert t.isfinite_all(grad=True) is False


# ----------------------------------------------------------------------
class TestStageRecovery:
    def _run(self, config, injector_spec=None, steps=8, seed=5):
        network = _easy_net()
        rng = np.random.default_rng(seed)
        param = InputParameterization(
            network.input_shape, 4, rng, dtype=config.np_dtype
        )
        guard = NumericsGuard.from_config(config)

        def objective(record, seq):
            out = record.output
            if not isinstance(out, Tensor):
                from repro.autograd.tensor import stack

                out = stack(out)
            return ((out - 0.5) ** 2.0).sum()

        if injector_spec is None:
            return run_stage(
                network, param, objective, steps, config,
                guard=guard, stage_label="stage1",
            ), guard
        with injecting(NanInjector.parse(injector_spec)):
            return run_stage(
                network, param, objective, steps, config,
                guard=guard, stage_label="stage1",
            ), guard

    def test_strict_raises_on_injected_loss(self):
        config = _quick_config(guard_policy="strict")
        with pytest.raises(NumericsError):
            self._run(config, "stage1-loss@0:2")

    def test_strict_raises_on_injected_grad(self):
        config = _quick_config(guard_policy="strict")
        with pytest.raises(NumericsError):
            self._run(config, "stage1-grad@0:2")

    def test_detection_within_one_step(self):
        config = _quick_config(guard_policy="recover")
        result, guard = self._run(config, "stage1-loss@0:3")
        assert guard.events, "injected NaN was not detected"
        assert guard.events[0].step == 3  # caught in the injected step
        assert result.restarts >= 1

    def test_recovery_restores_finite_state(self):
        config = _quick_config(guard_policy="recover")
        result, guard = self._run(config, "stage1-grad@0:1")
        assert result.restarts >= 1
        assert not result.aborted
        assert np.isfinite(result.best_loss)
        assert set(np.unique(result.best_stimulus)).issubset({0.0, 1.0})

    def test_budget_exhaustion_aborts_with_best_known(self):
        config = _quick_config(guard_policy="recover", guard_restart_budget=0)
        result, guard = self._run(config, "stage1-loss@0:3")
        assert result.aborted is True
        assert guard.aborted_stages == 1
        assert set(np.unique(result.best_stimulus)).issubset({0.0, 1.0})

    def test_no_injection_means_no_events(self):
        config = _quick_config(guard_policy="recover")
        result, guard = self._run(config)
        assert not guard.events
        assert result.restarts == 0 and not result.aborted

    def test_guarded_equals_unguarded_without_faults(self):
        """`recover` with no numeric fault is bit-identical to `off`."""
        base = _quick_config(guard_policy="off")
        guarded = _quick_config(guard_policy="recover")
        res_off, _ = self._run(base)
        res_rec, _ = self._run(guarded)
        assert np.array_equal(res_off.best_stimulus, res_rec.best_stimulus)
        assert res_off.best_loss == res_rec.best_loss
        assert res_off.loss_history == res_rec.loss_history

    def test_plateau_stop(self):
        # A constant objective never improves after the first step.
        network = _easy_net()
        config = _quick_config(guard_policy="recover", plateau_patience=3)
        param = InputParameterization(
            network.input_shape, 4, np.random.default_rng(0)
        )
        guard = NumericsGuard.from_config(config)
        result = run_stage(
            network,
            param,
            lambda record, seq: (_seq_tensor(seq) * 0.0).sum(),
            20,
            config,
            guard=guard,
            stage_label="stage1",
        )
        assert result.plateaued is True
        assert result.steps_run <= 5  # 1 improving step + patience
        assert guard.plateau_stops == 1


def _seq_tensor(seq):
    if isinstance(seq, Tensor):
        return seq
    from repro.autograd.tensor import stack

    return stack(seq)


# ----------------------------------------------------------------------
class TestGeneratorRecovery:
    def test_recovered_run_matches_uninjected_coverage(self):
        """A deterministic NaN in stage-1 gradients is detected and
        recovered; the run still reaches the same final coverage."""
        config = _quick_config(guard_policy="recover")

        def run(spec=None):
            gen = TestGenerator(_easy_net(), config, np.random.default_rng(3))
            if spec is None:
                return gen.generate()
            with injecting(NanInjector.parse(spec)):
                return gen.generate()

        clean = run()
        assert clean.activated_fraction == 1.0  # easy net: full coverage
        recovered = run("stage1-grad@0:1")
        assert recovered.activated_fraction == clean.activated_fraction
        health = recovered.health
        assert health is not None
        assert health.nonfinite_events >= 1
        assert health.recoveries >= 1
        assert not health.clean
        assert any("stage1" in event for event in health.events)
        # Recovered output is still a valid binary test set.
        for chunk in recovered.stimulus.chunks:
            assert set(np.unique(chunk)).issubset({0.0, 1.0})

    def test_strict_policy_raises_through_generator(self):
        config = _quick_config(guard_policy="strict")
        gen = TestGenerator(_easy_net(), config, np.random.default_rng(3))
        with injecting(NanInjector.parse("stage1-loss@0:0")):
            with pytest.raises(NumericsError):
                gen.generate()

    def test_off_policy_records_nothing(self):
        config = _quick_config(guard_policy="off")
        result = TestGenerator(
            _easy_net(), config, np.random.default_rng(3)
        ).generate()
        assert result.health is not None
        assert result.health.policy == "off"
        assert result.health.clean

    def test_iteration_reports_thread_restart_counts(self):
        config = _quick_config(guard_policy="recover")
        with injecting(NanInjector.parse("stage1-loss@0:1")):
            result = TestGenerator(
                _easy_net(), config, np.random.default_rng(3)
            ).generate()
        assert result.iterations[0].restarts >= 1
        assert all(r.stage1_s >= 0.0 for r in result.iterations)
        assert all(r.stage2_s >= 0.0 for r in result.iterations)
        assert all(r.bookkeeping_s >= -1e-9 for r in result.iterations)


# ----------------------------------------------------------------------
class TestStructuralReachability:
    def test_zero_fan_in_neuron_flagged(self):
        w = np.full((4, 3), 2.0)
        w[:, 1] = 0.0
        net = _dense_net(w, np.full((3, 2), 2.0))
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [False, True, False]
        assert not masks[1].any()

    def test_all_nonpositive_fan_in_flagged(self):
        w = np.full((4, 3), 2.0)
        w[:, 2] = -1.0
        net = _dense_net(w, np.full((3, 2), 2.0))
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [False, False, True]

    def test_dead_path_propagates_downstream(self):
        # Hidden neuron 1 is dead; output neuron 0 is fed positively
        # only by it, so the dead path propagates forward.
        w1 = np.full((4, 3), 2.0)
        w1[:, 1] = 0.0
        w2 = np.zeros((3, 2))
        w2[1, 0] = 5.0  # only the dead neuron feeds output 0
        w2[0, 1] = 5.0
        net = _dense_net(w1, w2)
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [False, True, False]
        assert masks[1].tolist() == [True, False]

    def test_nonpositive_threshold_never_flagged(self):
        w = np.zeros((4, 3))  # no fan-in at all
        net = _dense_net(w, np.full((3, 2), 2.0))
        net.modules[0].threshold[1] = 0.0  # fires from rest
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [True, False, True]

    def test_negative_leak_never_flagged(self):
        w = np.zeros((4, 3))
        net = _dense_net(w, np.full((3, 2), 2.0))
        net.modules[0].leak[2] = -0.5  # sign-monotonicity broken
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [True, True, False]

    def test_recurrent_feedback_rescues_neuron(self):
        layer = RecurrentLIF(2, 2, PARAMS)
        layer.weight.data[...] = np.array([[2.0, 0.0], [0.0, 0.0]])
        layer.recurrent_weight.data[...] = np.array([[0.0, 2.0], [0.0, 0.0]])
        net = SNN([layer], input_shape=(2,))
        masks = structural_unactivatable(net)
        # Neuron 1 has no feed-forward input but is fed by activatable
        # neuron 0 through the recurrent weights.
        assert masks[0].tolist() == [False, False]

    def test_recurrent_dead_feedback_does_not_bootstrap(self):
        layer = RecurrentLIF(2, 2, PARAMS)
        layer.weight.data[...] = np.array([[2.0, 0.0], [0.0, 0.0]])
        # Neuron 1 only feeds itself: dead feedback cannot bootstrap.
        layer.recurrent_weight.data[...] = np.array([[0.0, 0.0], [0.0, 2.0]])
        net = SNN([layer], input_shape=(2,))
        masks = structural_unactivatable(net)
        assert masks[0].tolist() == [False, True]

    def test_conv_dead_filter_flagged_per_channel(self):
        layer = ConvLIF(1, 2, (4, 4), kernel=3, params=PARAMS, padding=1)
        layer.weight.data[0] = 1.0  # channel 0 alive
        layer.weight.data[1] = -1.0  # channel 1: all non-positive
        net = SNN([layer], input_shape=(1, 4, 4))
        masks = structural_unactivatable(net)
        grid = masks[0].reshape(layer.neuron_shape)
        assert not grid[0].any()
        assert grid[1].all()

    def test_generator_excludes_unactivatable_from_denominator(self):
        """A zero-fan-in neuron: generation finishes with full coverage
        of the activatable set, no iterations chasing the dead neuron,
        and an explicit note in the health report."""
        w1 = np.full((4, 3), 2.0)
        w1[:, 1] = 0.0  # hidden neuron 1 can provably never fire
        net = _dense_net(w1, np.full((3, 2), 2.0))
        config = _quick_config(guard_policy="recover")
        logs = []
        result = TestGenerator(
            net, config, np.random.default_rng(3), log=logs.append
        ).generate()
        assert result.activated_fraction == 1.0
        assert result.health.unactivatable_neurons == 1
        assert result.health.unactivatable_per_layer == [1, 0]
        # The dead neuron was never activated, and the run did not stall
        # out its iteration budget chasing it.
        assert not result.activated_per_layer[0][1]
        assert len(result.iterations) < config.max_iterations
        assert any("unactivatable" in line for line in logs)
        assert "unactivatable" in result.health.summary()

    def test_triage_can_be_disabled(self):
        w1 = np.full((4, 3), 2.0)
        w1[:, 1] = 0.0
        net = _dense_net(w1, np.full((3, 2), 2.0))
        config = _quick_config(
            guard_policy="recover", reachability_triage=False, max_iterations=2
        )
        result = TestGenerator(net, config, np.random.default_rng(3)).generate()
        assert result.health.unactivatable_neurons == 0
        assert result.activated_fraction < 1.0  # dead neuron in denominator


# ----------------------------------------------------------------------
class TestDtypeGuard:
    def _overflow_stage(self, dtype, policy):
        """An objective whose scale overflows float32 but not float64."""
        network = _easy_net()
        config = _quick_config(
            guard_policy=policy, dtype=dtype, fused_bptt=True
        )
        param = InputParameterization(
            network.input_shape, 4, np.random.default_rng(0), dtype=config.np_dtype
        )
        guard = NumericsGuard.from_config(config)

        def objective(record, seq):
            out = record.output
            # (sum + 1) * 1e30 * 1e25: ~1e55 overflows float32 (max
            # ~3.4e38) to Inf but is comfortably finite in float64.
            return (out.sum() + 1.0) * 1e30 * 1e25

        result = run_stage(
            network, param, objective, 4, config, guard=guard, stage_label="stage1"
        )
        return result, guard

    def test_float32_overflow_caught_strict(self):
        with pytest.raises(NumericsError):
            self._overflow_stage("float32", "strict")

    def test_float64_tolerates_same_objective(self):
        result, guard = self._overflow_stage("float64", "strict")
        assert not guard.events
        assert np.isfinite(result.best_loss)

    def test_float32_overflow_recovered(self):
        result, guard = self._overflow_stage("float32", "recover")
        # Every step overflows, so the budget is spent and the stage is
        # degraded gracefully instead of crashing or looping forever.
        assert guard.events
        assert result.aborted or result.restarts >= 1
        assert set(np.unique(result.best_stimulus)).issubset({0.0, 1.0})

    def test_extreme_config_completes_under_recover(self):
        """Large surrogate slope + tiny tau on float32: the guarded run
        still finishes and yields a finite binary stimulus."""
        config = _quick_config(
            guard_policy="recover",
            dtype="float32",
            fused_bptt=True,
            surrogate_slope=1e6,
            tau_min=1e-30,
            tau_max=0.9,
            tau_decay=0.5,  # anneal aggressively towards tau_min
        )
        result = TestGenerator(
            _easy_net(), config, np.random.default_rng(11)
        ).generate()
        for chunk in result.stimulus.chunks:
            assert np.isfinite(chunk).all()
            assert set(np.unique(chunk)).issubset({0.0, 1.0})


# ----------------------------------------------------------------------
class TestGenerationHealthReport:
    def test_meta_round_trip(self):
        health = GenerationHealth(
            policy="recover",
            regime="fused-float64",
            nonfinite_events=2,
            recoveries=1,
            unactivatable_neurons=3,
            unactivatable_per_layer=[2, 1],
            events=["nonfinite loss at stage1 iteration 0 step 3"],
        )
        clone = GenerationHealth.from_meta(health.to_meta())
        assert clone == health

    def test_from_meta_none_passthrough(self):
        assert GenerationHealth.from_meta(None) is None

    def test_clean_flag(self):
        assert GenerationHealth().clean
        assert not GenerationHealth(nonfinite_events=1).clean
        assert not GenerationHealth(divergence_events=1).clean
        assert not GenerationHealth(aborted_stages=1).clean
        # Triage and plateau stops are expected degradations, not faults.
        assert GenerationHealth(unactivatable_neurons=5, plateau_stops=1).clean

    def test_absorb_folds_guard_state(self):
        guard = NumericsGuard(policy="recover")
        guard.check_loss(float("nan"))
        guard.note_recovery("stage1", 1)
        health = GenerationHealth(policy="recover")
        health.absorb(guard)
        assert health.nonfinite_events == 1
        assert health.recoveries == 1
        assert len(health.events) == 1

    def test_summary_mentions_detections(self):
        health = GenerationHealth(
            policy="recover", regime="fused-float64", nonfinite_events=2
        )
        assert "non-finite" in health.summary()
        assert GenerationHealth(regime="fused-float64").summary().startswith(
            "healthy"
        )
