"""L4 synapse-uniformity tests for convolutional receiving layers."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.losses import loss_synapse_uniformity
from repro.snn import ConvSpec, DenseSpec, FlattenSpec, NetworkSpec, PoolSpec, build_network
from repro.snn.network import ForwardRecord


def _record_from_arrays(layers):
    layer_spikes = []
    for arr in layers:
        layer_spikes.append([Tensor(arr[t]) for t in range(arr.shape[0])])
    return ForwardRecord(layer_spikes=layer_spikes, layer_names=[str(i) for i in range(len(layers))])


def _conv_net(seed=0):
    spec = NetworkSpec(
        name="l4conv",
        input_shape=(2, 4, 4),
        layers=(
            ConvSpec(out_channels=3, kernel=3, padding=1),
            ConvSpec(out_channels=2, kernel=3, padding=1),
            FlattenSpec(),
            DenseSpec(out_features=2),
        ),
    )
    return build_network(spec, np.random.default_rng(seed))


def _record_for(net, conv1_pattern):
    t_steps = 4
    conv1 = np.broadcast_to(conv1_pattern, (t_steps, 1, 3, 4, 4)).copy()
    conv2 = np.zeros((t_steps, 1, 2, 4, 4))
    dense = np.zeros((t_steps, 1, 2))
    return _record_from_arrays([conv1, conv2, dense])


class TestConvL4:
    def test_uniform_kernel_and_channels_zero_variance(self):
        net = _conv_net()
        net.modules[1].weight.data[...] = 0.5  # conv2 kernel uniform
        record = _record_for(net, np.ones((3, 4, 4)))  # equal channel activity
        # Only conv2's term is computed (dense receives zero counts, but its
        # weights are nonuniform -> contributions all zero since counts 0).
        net.modules[3].weight.data[...] = 0.25
        value = loss_synapse_uniformity(record, net).item()
        assert value == pytest.approx(0.0)

    def test_dominant_kernel_entry_penalised(self):
        net = _conv_net()
        net.modules[1].weight.data[...] = 0.5
        net.modules[1].weight.data[0, 0, 0, 0] = 10.0
        net.modules[3].weight.data[...] = 0.25
        record = _record_for(net, np.ones((3, 4, 4)))
        assert loss_synapse_uniformity(record, net).item() > 0.0

    def test_unequal_channel_activity_penalised(self):
        net = _conv_net()
        net.modules[1].weight.data[...] = 0.5
        net.modules[3].weight.data[...] = 0.25
        pattern = np.ones((3, 4, 4))
        pattern[1] = 0.0  # channel 1 silent -> its kernel entries contribute 0
        record = _record_for(net, pattern)
        assert loss_synapse_uniformity(record, net).item() > 0.0

    def test_gradient_flows_to_presynaptic_counts(self):
        net = _conv_net()
        t_steps = 4
        conv1_arrays = np.ones((t_steps, 1, 3, 4, 4))
        conv1 = [Tensor(conv1_arrays[t], requires_grad=True) for t in range(t_steps)]
        conv2 = [Tensor(np.zeros((1, 2, 4, 4))) for _ in range(t_steps)]
        dense = [Tensor(np.zeros((1, 2))) for _ in range(t_steps)]
        record = ForwardRecord(layer_spikes=[conv1, conv2, dense], layer_names=["a", "b", "c"])
        loss = loss_synapse_uniformity(record, net)
        loss.backward()
        assert any(t.grad is not None and np.abs(t.grad).sum() > 0 for t in conv1)

    def test_pool_between_layers_transforms_counts(self):
        spec = NetworkSpec(
            name="pooled",
            input_shape=(1, 4, 4),
            layers=(
                ConvSpec(out_channels=2, kernel=3, padding=1),
                PoolSpec(2),
                FlattenSpec(),
                DenseSpec(out_features=3),
            ),
        )
        net = build_network(spec, np.random.default_rng(0))
        t_steps = 3
        conv = np.ones((t_steps, 1, 2, 4, 4))
        dense = np.zeros((t_steps, 1, 3))
        record = _record_from_arrays([conv, dense])
        # Must not raise: the pooled count tensor (2x2x2 -> flat 8) matches
        # the dense layer's in_features.
        value = loss_synapse_uniformity(record, net).item()
        assert np.isfinite(value)
