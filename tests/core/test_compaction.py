"""Tests for static test compaction."""

import numpy as np
import pytest

from repro.core.compaction import compact_test
from repro.core.testset import TestStimulus
from repro.errors import TestGenerationError
from repro.faults import FaultModelConfig, build_catalog


@pytest.fixture(scope="module")
def setup(tiny_network):
    config = FaultModelConfig(synapse_sample_fraction=0.1)
    catalog = build_catalog(tiny_network, config, rng=np.random.default_rng(0))
    return tiny_network, config, catalog


def _chunks(*densities, seed=1, steps=8, shape=(24,)):
    rng = np.random.default_rng(seed)
    return [
        (rng.random((steps, 1) + shape) < density).astype(float) for density in densities
    ]


class TestCompaction:
    def test_redundant_duplicate_dropped(self, setup):
        network, config, catalog = setup
        rng = np.random.default_rng(2)
        strong = (rng.random((8, 1, 24)) < 0.5).astype(float)
        stimulus = TestStimulus(chunks=[strong, strong.copy()], input_shape=(24,))
        compacted, report = compact_test(network, stimulus, catalog.faults, config)
        assert len(compacted.chunks) == 1
        assert report.dropped_chunks
        assert report.compacted_coverage >= report.original_coverage - 1e-9

    def test_lossless_by_default(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.1, 0.4, 0.7), input_shape=(24,))
        compacted, report = compact_test(network, stimulus, catalog.faults, config)
        # Union coverage of kept single-chunk sets equals the original union.
        assert report.compacted_coverage >= report.original_coverage - 1e-9

    def test_order_preserved(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.3, 0.5, 0.2, 0.6), input_shape=(24,))
        compacted, report = compact_test(network, stimulus, catalog.faults, config)
        assert report.kept_chunks == sorted(report.kept_chunks)

    def test_steps_never_increase(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.2, 0.4, 0.6), input_shape=(24,))
        compacted, report = compact_test(network, stimulus, catalog.faults, config)
        assert report.compacted_steps <= report.original_steps
        assert compacted.duration_steps == report.compacted_steps

    def test_tolerance_allows_shorter_tests(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.1, 0.3, 0.5, 0.7), input_shape=(24,))
        _, lossless = compact_test(network, stimulus, catalog.faults, config)
        _, lossy = compact_test(
            network, stimulus, catalog.faults, config, coverage_tolerance=0.2
        )
        assert len(lossy.kept_chunks) <= len(lossless.kept_chunks)

    def test_rejects_bad_tolerance(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.5), input_shape=(24,))
        with pytest.raises(TestGenerationError):
            compact_test(network, stimulus, catalog.faults, config, coverage_tolerance=1.0)

    def test_empty_fault_list(self, setup):
        network, config, _ = setup
        stimulus = TestStimulus(chunks=_chunks(0.5, 0.5), input_shape=(24,))
        compacted, report = compact_test(network, stimulus, [], config)
        assert len(compacted.chunks) >= 1

    def test_summary(self, setup):
        network, config, catalog = setup
        stimulus = TestStimulus(chunks=_chunks(0.4, 0.4), input_shape=(24,))
        _, report = compact_test(network, stimulus, catalog.faults, config)
        assert "compaction kept" in report.summary()
