"""Coding-scheme independence (paper §I: "no assumption about the
information coding scheme, i.e., rate coding or time-to-first-spike
coding").

Builds a time-to-first-spike-coded classification task, trains an SNN on
it, and verifies the test-generation algorithm works unchanged.
"""

import numpy as np
import pytest

from repro.core import TestGenConfig, TestGenerator
from repro.datasets.base import SpikingDataset
from repro.datasets.generators import digit_bitmap
from repro.faults import FaultModelConfig, FaultSimulator, build_catalog
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.snn.encoding import ttfs_encode
from repro.training import Trainer


def _ttfs_dataset(train=60, test=30, steps=16, seed=0):
    """Digit bitmaps as intensity maps, TTFS-encoded: one spike per active
    pixel, earlier for brighter pixels (jittered per sample)."""
    rng = np.random.default_rng(seed)
    size = 8

    def make(count):
        inputs = np.zeros((steps, count, size * size), dtype=np.uint8)
        labels = np.arange(count) % 10
        for i in range(count):
            glyph = digit_bitmap(int(labels[i]), size).reshape(-1)
            intensity = np.clip(glyph * (0.5 + 0.4 * rng.random(glyph.shape)), 0, 1)
            inputs[:, i] = ttfs_encode(intensity, steps).astype(np.uint8)
        return inputs, labels

    train_inputs, train_labels = make(train)
    test_inputs, test_labels = make(test)
    return SpikingDataset(
        name="ttfs-digits",
        input_shape=(size * size,),
        num_classes=10,
        train_inputs=train_inputs,
        train_labels=train_labels,
        test_inputs=test_inputs,
        test_labels=test_labels,
    )


@pytest.fixture(scope="module")
def ttfs_flow():
    dataset = _ttfs_dataset()
    spec = NetworkSpec(
        name="ttfs",
        input_shape=dataset.input_shape,
        layers=(DenseSpec(out_features=20), DenseSpec(out_features=10)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    training = Trainer(network, dataset, lr=0.03, batch_size=16).fit(
        epochs=5, rng=np.random.default_rng(1)
    )
    return dataset, network, training


class TestTTFSIndependence:
    def test_ttfs_samples_single_spike_per_channel(self, ttfs_flow):
        dataset, _, _ = ttfs_flow
        per_channel = dataset.train_inputs.sum(axis=0)
        assert per_channel.max() <= 1

    def test_network_learns_ttfs_code(self, ttfs_flow):
        _, _, training = ttfs_flow
        assert training.test_accuracy > 0.3  # well above 10% chance

    def test_generation_works_unchanged(self, ttfs_flow):
        dataset, network, _ = ttfs_flow
        config = TestGenConfig(
            steps_stage1=60, probe_steps=100, max_iterations=3, t_in_max=48,
            time_limit_s=120,
        )
        result = TestGenerator(network, config, np.random.default_rng(2)).generate()
        assert result.activated_fraction > 0.5

        fault_config = FaultModelConfig(synapse_sample_fraction=0.05)
        catalog = build_catalog(network, fault_config, rng=np.random.default_rng(3))
        simulator = FaultSimulator(network, fault_config)
        optimized = simulator.detect(result.stimulus.assembled(), catalog.faults)
        sample, _ = dataset.sample(0, "test")
        baseline = simulator.detect(sample, catalog.faults)
        assert optimized.detection_rate() > baseline.detection_rate()
