"""Tests for tables, activity maps, snapshots, and propagation histograms."""

import numpy as np
import pytest

from repro.analysis import (
    Table,
    activation_percentage,
    activity_map,
    format_percent,
    format_seconds,
    propagation_histogram,
    render_activity,
    render_histogram,
    render_snapshot,
    snapshot_times,
)
from repro.analysis.snapshots import render_snapshot_series
from repro.errors import ConfigurationError, ShapeError
from repro.faults.simulator import DetectionResult
from repro.snn import DenseSpec, NetworkSpec, build_network


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.9972) == "99.72%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_seconds_ranges(self):
        assert format_seconds(0.5) == "500 ms"
        assert format_seconds(30) == "30.0 s"
        assert format_seconds(600) == "10.0 min"
        assert format_seconds(7200) == "2.00 h"


class TestTable:
    def test_render_aligns(self):
        table = Table("T", ["a", "bbbb"])
        table.add_row("x", 1)
        table.add_row("longer", 22)
        text = table.render()
        lines = text.splitlines()
        assert len({len(l) for l in lines[2:]}) == 1  # equal widths

    def test_rejects_wrong_arity(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_title_rendered(self):
        table = Table("My Title", ["a"])
        assert "My Title" in table.render()


@pytest.fixture(scope="module")
def small_net():
    spec = NetworkSpec(
        name="a", input_shape=(6,), layers=(DenseSpec(out_features=4), DenseSpec(out_features=3))
    )
    return build_network(spec, np.random.default_rng(0))


class TestActivity:
    def test_map_shapes(self, small_net):
        stim = np.ones((8, 1, 6))
        amap = activity_map(small_net, stim)
        assert len(amap.activated) == 2
        assert amap.activated[0].shape == (4,)
        assert 0.0 <= amap.fraction <= 1.0

    def test_zero_stimulus_no_activity(self, small_net):
        amap = activity_map(small_net, np.zeros((8, 1, 6)))
        assert amap.total_activated == 0

    def test_percentage_matches_map(self, small_net):
        stim = np.ones((8, 1, 6))
        assert activation_percentage(small_net, stim) == activity_map(small_net, stim).fraction

    def test_threshold(self, small_net):
        stim = np.ones((8, 1, 6))
        relaxed = activity_map(small_net, stim, threshold=1)
        strict = activity_map(small_net, stim, threshold=100)
        assert strict.total_activated <= relaxed.total_activated

    def test_render_contains_symbols(self, small_net):
        text = render_activity(activity_map(small_net, np.ones((8, 1, 6))))
        assert "total activated" in text
        assert "#" in text or "." in text

    def test_render_conv_layers(self):
        from repro.snn import ConvSpec, FlattenSpec, PoolSpec

        spec = NetworkSpec(
            name="c",
            input_shape=(2, 4, 4),
            layers=(ConvSpec(out_channels=2, kernel=3, padding=1), FlattenSpec(),
                    DenseSpec(out_features=3)),
        )
        net = build_network(spec, np.random.default_rng(0))
        text = render_activity(activity_map(net, np.ones((6, 1, 2, 4, 4))))
        assert "channel 0" in text


class TestSnapshots:
    def test_times_spread(self):
        assert snapshot_times(100, 4) == [0, 33, 66, 99]

    def test_times_clamped(self):
        assert snapshot_times(2, 4) == [0, 1]

    def test_times_validation(self):
        with pytest.raises(ShapeError):
            snapshot_times(0, 4)

    def test_polarity_rendering(self):
        stim = np.zeros((2, 1, 2, 2, 2))
        stim[0, 0, 0, 0, 0] = 1  # ON at (0,0)
        stim[0, 0, 1, 1, 1] = 1  # OFF at (1,1)
        text = render_snapshot(stim, 0)
        assert text.splitlines()[0][0] == "+"
        assert text.splitlines()[1][1] == "-"

    def test_both_polarities_hash(self):
        stim = np.ones((1, 1, 2, 2, 2))
        assert render_snapshot(stim, 0).splitlines()[0][0] == "#"

    def test_flat_rendering(self):
        stim = np.zeros((1, 1, 5))
        stim[0, 0, 2] = 1
        assert render_snapshot(stim, 0) == "..|.."

    def test_range_checks(self):
        with pytest.raises(ShapeError):
            render_snapshot(np.zeros((2, 1, 4)), 5)
        with pytest.raises(ShapeError):
            render_snapshot(np.zeros((2, 4)), 0)

    def test_series(self):
        stim = np.zeros((8, 1, 4))
        text = render_snapshot_series(stim, count=3)
        assert text.count("t = ") == 3


def _detection(detected, diffs):
    detected = np.asarray(detected, dtype=bool)
    diffs = np.asarray(diffs, dtype=float)
    return DetectionResult(
        faults=[None] * len(detected),
        detected=detected,
        output_l1=diffs.sum(axis=1),
        class_count_diff=diffs,
        wall_time=0.0,
    )


class TestPropagation:
    def test_histogram_counts(self):
        det = _detection([True, True, False], [[0, 2], [5, 1], [9, 9]])
        hist = propagation_histogram(det, bins=(0, 1, 4, 100))
        assert hist.detected_faults == 2
        # per-class pooled: values 0,2,5,1 -> bins [0,1):1, [1,4):2, [4,100):1
        assert hist.counts.sum() == 4

    def test_undetected_excluded(self):
        det = _detection([False, False], [[3, 3], [4, 4]])
        hist = propagation_histogram(det)
        assert hist.detected_faults == 0
        assert hist.counts.sum() == 0

    def test_stats(self):
        det = _detection([True, True], [[1, 1], [3, 3]])
        hist = propagation_histogram(det)
        assert hist.mean_diff == 4.0  # totals 2 and 6
        assert hist.median_diff == 4.0
        assert hist.max_diff == 6.0
        assert hist.fraction_diff_gt_one == 1.0

    def test_render(self):
        det = _detection([True], [[2, 0]])
        text = render_histogram(propagation_histogram(det))
        assert "detected faults: 1" in text
        assert "#" in text
