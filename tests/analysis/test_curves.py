"""Tests for coverage-vs-test-length curves."""

import numpy as np
import pytest

from repro.analysis.curves import CoverageCurve, coverage_vs_chunks
from repro.core.testset import TestStimulus
from repro.faults import FaultModelConfig, build_catalog
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.training import Trainer
from repro.datasets import SHDLike


@pytest.fixture(scope="module")
def setup():
    dataset = SHDLike(train_size=60, test_size=20, channels=20, steps=12, seed=0)
    spec = NetworkSpec(
        name="curve",
        input_shape=(20,),
        layers=(DenseSpec(out_features=12), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    Trainer(network, dataset, lr=0.03, batch_size=16).fit(epochs=3, rng=np.random.default_rng(1))
    config = FaultModelConfig(synapse_sample_fraction=0.1)
    catalog = build_catalog(network, config, rng=np.random.default_rng(2))
    rng = np.random.default_rng(3)
    chunks = [(rng.random((8, 1, 20)) > 0.4).astype(float) for _ in range(3)]
    stimulus = TestStimulus(chunks=chunks, input_shape=(20,))
    return network, stimulus, catalog, config


class TestCoverageCurve:
    def test_monotone_nondecreasing(self, setup):
        network, stimulus, catalog, config = setup
        curve = coverage_vs_chunks(network, stimulus, catalog.faults, config)
        assert curve.detection_rates == sorted(curve.detection_rates)

    def test_lengths_match(self, setup):
        network, stimulus, catalog, config = setup
        curve = coverage_vs_chunks(network, stimulus, catalog.faults, config)
        assert len(curve.detection_rates) == len(stimulus.chunks)
        assert curve.cumulative_steps[-1] == stimulus.duration_steps

    def test_final_rate_matches_full_detection(self, setup):
        from repro.faults.simulator import FaultSimulator

        network, stimulus, catalog, config = setup
        curve = coverage_vs_chunks(network, stimulus, catalog.faults, config)
        full = FaultSimulator(network, config).detect(stimulus.assembled(), catalog.faults)
        assert curve.final_rate == pytest.approx(full.detection_rate())

    def test_saturation_chunk(self):
        curve = CoverageCurve(
            chunk_durations=[4, 4, 4],
            cumulative_steps=[4, 12, 20],
            detection_rates=[0.5, 0.79, 0.80],
        )
        assert curve.saturation_chunk(tolerance=0.02) == 1
        assert curve.saturation_chunk(tolerance=0.0) == 2

    def test_render(self):
        curve = CoverageCurve([4], [4], [0.5])
        text = curve.render()
        assert "50.00%" in text
