#!/usr/bin/env python
"""Reliability analysis: how large must a timing variation grow before it
matters — and does the test catch it first?

Uses two of the library's extensions around the paper's core flow:

- fault collapsing (`repro.faults.collapse`) shrinks the campaign by
  dropping provably undetectable faults;
- sensitivity sweeps (`repro.faults.sensitivity`) grade each timing-fault
  site by the perturbation magnitude at which (a) the generated test first
  detects it and (b) it first costs accuracy.

A well-behaved test detects every fault at or below the magnitude where
it becomes harmful ("detected before critical").

    python examples/reliability_analysis.py
"""

import numpy as np

from repro.analysis import Table, format_percent
from repro.core import TestGenConfig, TestGenerator
from repro.datasets import SHDLike
from repro.faults import (
    FaultModelConfig,
    NeuronFault,
    NeuronFaultKind,
    build_catalog,
    collapse_catalog,
    sweep_timing_fault,
)
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.training import Trainer


def main() -> None:
    rng = np.random.default_rng
    dataset = SHDLike(train_size=120, test_size=40, channels=48, steps=24, seed=0)
    spec = NetworkSpec(
        name="reliability",
        input_shape=dataset.input_shape,
        layers=(DenseSpec(out_features=32), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, rng(0))
    Trainer(network, dataset, lr=0.03, batch_size=16).fit(epochs=6, rng=rng(1))

    # Collapse the catalog before any campaign.
    catalog = build_catalog(network, FaultModelConfig(), rng=rng(2))
    collapsed = collapse_catalog(network, catalog, atol=1e-12)
    print(collapsed.summary())

    # Generate the test once.
    config = TestGenConfig(steps_stage1=150, probe_steps=200, max_iterations=5,
                           time_limit_s=600, l4_include_input=True)
    generation = TestGenerator(network, config, rng=rng(3)).generate()
    stimulus = generation.stimulus.assembled()
    print(
        f"test: {generation.stimulus.duration_steps} steps, "
        f"activated {format_percent(generation.activated_fraction)}"
    )

    # Sweep threshold-variation magnitude on a sample of hidden neurons.
    inputs, labels = dataset.subset(24, "test")
    magnitudes = [1.1, 1.25, 1.5, 2.0, 4.0]
    sites = rng(4).choice(32, size=10, replace=False)

    table = Table(
        "Threshold-variation sensitivity (hidden layer)",
        ["Neuron", "Detected at factor", "Critical at factor", "Detected first?"],
    )
    safe = 0
    for neuron in sites:
        fault = NeuronFault(0, int(neuron), NeuronFaultKind.TIMING_THRESHOLD)
        curve = sweep_timing_fault(network, fault, magnitudes, stimulus, inputs, labels)
        detect = curve.detection_threshold()
        critical = curve.criticality_threshold()
        table.add_row(
            int(neuron),
            f"{detect:.2f}" if detect is not None else "never",
            f"{critical:.2f}" if critical is not None else "never",
            "yes" if curve.detected_before_critical else "NO",
        )
        safe += curve.detected_before_critical
    print("\n" + table.render())
    print(f"\ndetected-before-critical: {safe}/{len(sites)} sampled sites")


if __name__ == "__main__":
    main()
