#!/usr/bin/env python
"""Head-to-head comparison of test-generation strategies (Table IV style).

Pits the paper's loss-driven optimisation against the three prior-work
strategies on one benchmark and fault list:

- greedy selection of dataset samples ([18]);
- greedy selection of adversarial examples ([17]/[19]);
- greedy selection of random patterns with config switching ([20]).

The point the table makes: the baselines all need fault simulation *inside*
the generation loop (candidates x faults simulations) and end up with long
tests, while the optimized method runs zero in-the-loop fault simulations
and produces a much shorter test for comparable coverage.

    python examples/compare_test_strategies.py
"""

import numpy as np

from repro.analysis import Table, format_percent, format_seconds
from repro.baselines import (
    adversarial_baseline,
    greedy_dataset_baseline,
    random_pattern_baseline,
)
from repro.core import TestGenConfig, TestGenerator
from repro.datasets import SHDLike
from repro.faults import FaultModelConfig, FaultSimulator, build_catalog
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, RecurrentSpec, build_network
from repro.training import Trainer


def main() -> None:
    rng = np.random.default_rng
    dataset = SHDLike(train_size=160, test_size=40, channels=64, steps=30, seed=0)
    spec = NetworkSpec(
        name="compare",
        input_shape=dataset.input_shape,
        layers=(RecurrentSpec(out_features=64), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, rng(0))
    Trainer(network, dataset, lr=0.02, batch_size=16).fit(epochs=8, rng=rng(1))

    fault_config = FaultModelConfig(synapse_sample_fraction=0.05)
    catalog = build_catalog(network, fault_config, rng=rng(2))
    faults = catalog.faults
    print(f"comparison fault list: {len(faults)} faults")

    # --- proposed method -------------------------------------------------
    config = TestGenConfig(steps_stage1=300, probe_steps=300, max_iterations=8,
                           time_limit_s=600, l4_include_input=True)
    generation = TestGenerator(network, config, rng=rng(3)).generate()
    simulator = FaultSimulator(network, fault_config)
    proposed_detection = simulator.detect(generation.stimulus.assembled(), faults)

    # --- baselines --------------------------------------------------------
    print("running greedy-dataset baseline ...")
    ds_result = greedy_dataset_baseline(network, dataset, faults, fault_config, pool_size=20)
    print("running adversarial baseline ...")
    adv_result = adversarial_baseline(
        network, dataset, faults, fault_config, pool_size=10, craft_steps=20,
        num_configurations=4, switch_overhead_steps=2 * dataset.steps,
    )
    print("running random-pattern baseline ...")
    rnd_result = random_pattern_baseline(
        network, dataset.steps, faults, rng(4), fault_config=fault_config,
        pool_size=20, num_configurations=6, switch_overhead_steps=2 * dataset.steps,
    )

    # --- report -----------------------------------------------------------
    table = Table(
        "Test-strategy comparison (SHD-like benchmark)",
        ["Metric", "This work", "Dataset[18]", "Adversarial[17,19]", "Random[20]"],
    )
    table.add_row(
        "Generation time",
        format_seconds(generation.runtime_s),
        format_seconds(ds_result.generation_time_s),
        format_seconds(adv_result.generation_time_s),
        format_seconds(rnd_result.generation_time_s),
    )
    table.add_row(
        "In-loop fault simulations",
        0,
        ds_result.fault_simulations,
        adv_result.fault_simulations,
        rnd_result.fault_simulations,
    )
    table.add_row(
        "Test duration (steps)",
        generation.stimulus.duration_steps,
        ds_result.test_duration_steps,
        adv_result.test_duration_steps,
        rnd_result.test_duration_steps,
    )
    table.add_row(
        "Test duration (samples)",
        f"{generation.stimulus.duration_samples(dataset.steps):.1f}",
        f"{ds_result.duration_samples(dataset.steps):.1f}",
        f"{adv_result.duration_samples(dataset.steps):.1f}",
        f"{rnd_result.duration_samples(dataset.steps):.1f}",
    )
    table.add_row(
        "Fault coverage",
        format_percent(proposed_detection.detection_rate()),
        format_percent(ds_result.coverage),
        format_percent(adv_result.coverage),
        format_percent(rnd_result.coverage),
    )
    table.add_row("Configurations", 1, 1, adv_result.num_configurations,
                  rnd_result.num_configurations)
    print("\n" + table.render())


if __name__ == "__main__":
    main()
