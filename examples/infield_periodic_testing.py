#!/usr/bin/env python
"""In-field periodic self-test of a deployed SNN accelerator.

The paper's key selling point beyond manufacturing test: the optimized
stimulus is short enough (a few dataset samples) and small enough (a few
KiB bit-packed) to store on-chip and replay periodically in the field.

This example simulates a device lifetime: the chip runs inference, and
every "maintenance window" it replays the stored test and compares the
output signature against the stored golden response.  Midway through the
lifetime a latent hardware fault appears (e.g. an ageing-induced dead
neuron); the periodic test must flag it at the next window.

    python examples/infield_periodic_testing.py
"""

import numpy as np

from repro.core import TestGenConfig, TestGenerator
from repro.datasets import SHDLike
from repro.faults import FaultModelConfig, build_catalog, inject
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, RecurrentSpec, build_network
from repro.training import Trainer


def output_signature(network, stimulus: np.ndarray) -> np.ndarray:
    """The golden response stored next to the test: output spike trains."""
    return network.run(stimulus)


def main() -> None:
    rng = np.random.default_rng
    # Deployed model.
    dataset = SHDLike(train_size=160, test_size=40, channels=64, steps=30, seed=0)
    spec = NetworkSpec(
        name="deployed",
        input_shape=dataset.input_shape,
        layers=(RecurrentSpec(out_features=64), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, rng(0))
    Trainer(network, dataset, lr=0.02, batch_size=16).fit(epochs=8, rng=rng(1))

    # One-time: generate and store the compact test + golden signature.
    config = TestGenConfig(steps_stage1=250, probe_steps=300, max_iterations=6,
                           time_limit_s=600, l4_include_input=True)
    generation = TestGenerator(network, config, rng=rng(2)).generate()
    stored_test = generation.stimulus.assembled()
    golden = output_signature(network, stored_test)
    kib = generation.stimulus.storage_bits() / 8 / 1024
    print(
        f"stored on-chip: test of {stored_test.shape[0]} steps "
        f"({kib:.1f} KiB bit-packed) + golden signature"
    )

    # Simulated lifetime: a fault appears at window 5 of 10.
    fault_config = FaultModelConfig()
    catalog = build_catalog(network, fault_config, rng=rng(3))
    ageing_fault = catalog.neuron_faults[len(catalog.neuron_faults) // 2]
    print(f"latent fault that will develop: {ageing_fault.describe()}")

    windows = 10
    fault_onset = 5
    detected_at = None
    for window in range(windows):
        faulty = window >= fault_onset
        if faulty:
            with inject(network, ageing_fault, fault_config):
                response = output_signature(network, stored_test)
        else:
            response = output_signature(network, stored_test)
        mismatch = int(np.abs(response - golden).sum())
        status = "FAIL" if mismatch > 0 else "pass"
        print(f"maintenance window {window}: signature mismatch {mismatch:5d} -> {status}")
        if mismatch > 0 and detected_at is None:
            detected_at = window

    if detected_at is None:
        print("\nfault escaped the periodic test!")
    else:
        latency = detected_at - fault_onset
        print(
            f"\nfault developed at window {fault_onset}, detected at window "
            f"{detected_at} (latency {latency} windows)"
        )
        assert latency == 0, "the stored test should flag the fault immediately"


if __name__ == "__main__":
    main()
