#!/usr/bin/env python
"""Post-manufacturing test flow for an event-camera gesture accelerator.

Scenario: a neuromorphic accelerator ships programmed with a DVS-gesture
SNN (the paper's IBM DVS128 Gesture case study).  Production test needs a
stimulus that is (a) short — tester time is money — and (b) high-coverage
for *critical* faults, i.e. those that would change predictions in the
field.  This example:

1. trains the gesture SNN (stands in for the shipped model);
2. labels a fault sample as critical/benign against held-out data — the
   expensive ground-truth campaign a test engineer runs once;
3. generates the compact optimized test;
4. reports the production-relevant metrics: test time, coverage split by
   criticality, and the worst accuracy loss an escaping fault could cause.

Runs in a few minutes on CPU:

    python examples/dvs_gesture_accelerator_test.py
"""

import numpy as np

from repro.analysis import Table, format_percent, format_seconds
from repro.core import TestGenConfig, TestGenerator
from repro.datasets import DVSGestureLike
from repro.faults import FaultModelConfig, FaultSimulator, build_catalog
from repro.snn import (
    ConvSpec,
    DenseSpec,
    FlattenSpec,
    LIFParameters,
    NetworkSpec,
    PoolSpec,
    build_network,
)
from repro.training import Trainer


def main() -> None:
    rng = np.random.default_rng
    # 1. The shipped model (scaled DVS128-Gesture network).
    dataset = DVSGestureLike(train_size=88, test_size=33, size=16, steps=32, seed=0)
    spec = NetworkSpec(
        name="gesture-accelerator",
        input_shape=dataset.input_shape,
        layers=(
            ConvSpec(out_channels=6, kernel=3, padding=1, weight_scale=4.0),
            PoolSpec(2),
            ConvSpec(out_channels=8, kernel=3, padding=1, weight_scale=4.0),
            PoolSpec(2),
            FlattenSpec(),
            DenseSpec(out_features=32),
            DenseSpec(out_features=dataset.num_classes),
        ),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, rng(0))
    training = Trainer(network, dataset, lr=0.025, batch_size=16).fit(
        epochs=6, rng=rng(1)
    )
    print(f"shipped model accuracy: {format_percent(training.test_accuracy)}")
    print(network.describe())

    # 2. Ground-truth criticality labelling (one-time engineering cost).
    fault_config = FaultModelConfig(
        neuron_sample_fraction=0.15, synapse_sample_fraction=0.05
    )
    catalog = build_catalog(network, fault_config, rng=rng(2))
    simulator = FaultSimulator(network, fault_config)
    inputs, labels = dataset.subset(12, "test")
    classification = simulator.classify(inputs, labels, catalog.faults)
    print(
        f"labelled {len(catalog)} faults in {format_seconds(classification.wall_time)}: "
        f"{classification.critical_count} critical, {classification.benign_count} benign"
    )

    # 3. Compact optimized test.
    config = TestGenConfig(steps_stage1=120, probe_steps=150, max_iterations=5,
                           time_limit_s=900)
    generation = TestGenerator(network, config, rng=rng(3), log=print).generate()
    stimulus = generation.stimulus

    # 4. Production metrics.
    detection = simulator.detect(stimulus.assembled(), catalog.faults)
    coverage = FaultSimulator.coverage(detection, classification)

    report = Table("Production test report", ["Metric", "Value"])
    report.add_row("Test generation runtime", format_seconds(generation.runtime_s))
    report.add_row("Test application time (steps)", stimulus.duration_steps)
    report.add_row(
        "Test application time (samples-equivalent)",
        f"{stimulus.duration_samples(dataset.steps):.2f}",
    )
    report.add_row("Activated neurons", format_percent(generation.activated_fraction))
    report.add_row("FC critical neuron faults", format_percent(coverage.fc_critical_neuron))
    report.add_row("FC critical synapse faults", format_percent(coverage.fc_critical_synapse))
    report.add_row("FC benign neuron faults", format_percent(coverage.fc_benign_neuron))
    report.add_row("FC benign synapse faults", format_percent(coverage.fc_benign_synapse))
    report.add_row(
        "Worst accuracy drop of a test escape",
        format_percent(
            max(coverage.max_drop_undetected_neuron, coverage.max_drop_undetected_synapse)
        ),
    )
    print("\n" + report.render())


if __name__ == "__main__":
    main()
