#!/usr/bin/env python
"""Diagnosing a failing device with a fault dictionary.

After the optimized test flags a device as faulty, the *same* detection
campaign that verified coverage doubles as a fault dictionary: each
detected fault's output signature (per-class spike-count difference) is
stored, and a failing device's observed signature ranks the candidate
faults.  This example:

1. builds the test and its fault dictionary;
2. simulates field returns: devices with randomly chosen hidden faults;
3. diagnoses each return and reports how often the true fault is ranked
   among the top candidates.

    python examples/fault_diagnosis.py
"""

import numpy as np

from repro.core import TestGenConfig, TestGenerator
from repro.datasets import SHDLike
from repro.faults import (
    FaultDictionary,
    FaultModelConfig,
    FaultSimulator,
    build_catalog,
    inject,
    observed_signature,
)
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, build_network
from repro.training import Trainer


def main() -> None:
    rng = np.random.default_rng
    dataset = SHDLike(train_size=120, test_size=40, channels=48, steps=24, seed=0)
    spec = NetworkSpec(
        name="diagnosis",
        input_shape=dataset.input_shape,
        layers=(DenseSpec(out_features=32), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, rng(0))
    Trainer(network, dataset, lr=0.03, batch_size=16).fit(epochs=6, rng=rng(1))

    # Generate the test and build the dictionary from its verification run.
    config = TestGenConfig(steps_stage1=150, probe_steps=200, max_iterations=5,
                           time_limit_s=600, l4_include_input=True)
    generation = TestGenerator(network, config, rng=rng(2)).generate()
    stimulus = generation.stimulus.assembled()

    fault_config = FaultModelConfig(synapse_sample_fraction=0.1)
    catalog = build_catalog(network, fault_config, rng=rng(3))
    simulator = FaultSimulator(network, fault_config)
    detection = simulator.detect(stimulus, catalog.faults)
    dictionary = FaultDictionary.from_detection(detection)
    print(
        f"dictionary: {len(dictionary)} detected faults, "
        f"diagnostic resolution {dictionary.resolution() * 100:.1f}%"
    )

    # Simulate field returns and diagnose them.
    golden = network.run(stimulus)
    detected_faults = dictionary.faults
    returns = rng(4).choice(len(detected_faults), size=12, replace=False)
    hits_top1 = hits_top5 = 0
    for return_index in returns:
        true_fault = detected_faults[int(return_index)]
        with inject(network, true_fault, fault_config):
            response = network.run(stimulus)
        signature = observed_signature(golden, response)
        candidates = dictionary.diagnose(signature, top=5)
        ranked = [f.describe() for f, _ in candidates]
        if ranked and ranked[0] == true_fault.describe():
            hits_top1 += 1
        if true_fault.describe() in ranked:
            hits_top5 += 1
        print(f"device with {true_fault.describe():<42} -> top match {ranked[0]}")

    print(f"\ntop-1 diagnosis accuracy: {hits_top1}/{len(returns)}")
    print(f"top-5 diagnosis accuracy: {hits_top5}/{len(returns)}")


if __name__ == "__main__":
    main()
