#!/usr/bin/env python
"""Quickstart: generate a compact fault-coverage test for a small SNN.

This walks the full flow of the paper on a small audio-style benchmark:

1. build a synthetic spiking dataset and train an SNN on it;
2. enumerate the hardware fault catalog (neuron + synapse faults);
3. run the proposed loss-driven test generation (no fault simulation in
   the optimisation loop);
4. verify the test's fault coverage with a single fault-simulation
   campaign and compare it against a random dataset sample.

Runs in well under a minute on a laptop CPU:

    python examples/quickstart.py
"""

import numpy as np

from repro.analysis import activation_percentage, format_percent, format_seconds
from repro.core import TestGenConfig, TestGenerator, verify_coverage
from repro.datasets import SHDLike
from repro.faults import FaultModelConfig, FaultSimulator, build_catalog
from repro.snn import DenseSpec, LIFParameters, NetworkSpec, RecurrentSpec, build_network
from repro.training import Trainer


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Dataset + trained SNN (the device-under-test's programmed model).
    # ------------------------------------------------------------------
    dataset = SHDLike(train_size=160, test_size=40, channels=64, steps=30, seed=0)
    print(dataset.describe())

    spec = NetworkSpec(
        name="quickstart",
        input_shape=dataset.input_shape,
        layers=(RecurrentSpec(out_features=64), DenseSpec(out_features=dataset.num_classes)),
        lif=LIFParameters(threshold=1.0, leak=0.9, refractory_steps=1),
    )
    network = build_network(spec, np.random.default_rng(0))
    result = Trainer(network, dataset, lr=0.02, batch_size=16).fit(
        epochs=8, rng=np.random.default_rng(1)
    )
    print(f"trained: test accuracy {format_percent(result.test_accuracy)}")
    print(network.describe())

    # ------------------------------------------------------------------
    # 2. Fault catalog: every neuron x 5 kinds, sampled synapses x 4 kinds.
    # ------------------------------------------------------------------
    fault_config = FaultModelConfig(synapse_sample_fraction=0.1)
    catalog = build_catalog(network, fault_config, rng=np.random.default_rng(2))
    print(catalog.summary())

    # ------------------------------------------------------------------
    # 3. Test generation — the paper's algorithm.  Note: no fault
    #    simulation happens inside generate().
    # ------------------------------------------------------------------
    config = TestGenConfig(
        steps_stage1=300,
        probe_steps=300,
        max_iterations=8,
        time_limit_s=600,
        l4_include_input=True,
    )
    generator = TestGenerator(network, config, rng=np.random.default_rng(3), log=print)
    generation = generator.generate()
    stimulus = generation.stimulus
    print(
        f"\ngenerated {generation.num_chunks} chunks in "
        f"{format_seconds(generation.runtime_s)}; "
        f"test duration {stimulus.duration_steps} steps "
        f"(~{stimulus.duration_samples(dataset.steps):.1f} dataset samples); "
        f"activated {format_percent(generation.activated_fraction)} of neurons"
    )

    # ------------------------------------------------------------------
    # 4. One verification campaign + comparison with a dataset sample.
    # ------------------------------------------------------------------
    detection, _ = verify_coverage(network, stimulus, catalog.faults, fault_config)
    print(f"\nfault detection rate of the optimized test: "
          f"{format_percent(detection.detection_rate())}")

    sample, _ = dataset.sample(0, "test")
    simulator = FaultSimulator(network, fault_config)
    sample_detection = simulator.detect(sample, catalog.faults)
    print(f"fault detection rate of one dataset sample:  "
          f"{format_percent(sample_detection.detection_rate())}")

    print(
        f"\nneuron activation: optimized "
        f"{format_percent(activation_percentage(network, stimulus.assembled()))} vs "
        f"sample {format_percent(activation_percentage(network, sample))}"
    )

    # The stimulus can be stored on-chip for in-field testing:
    print(f"on-chip storage: {stimulus.storage_bits() / 8 / 1024:.1f} KiB bit-packed")


if __name__ == "__main__":
    main()
