#!/usr/bin/env python
"""Render a compact paper-vs-measured summary from results/*.json.

Used to refresh the measured columns quoted in EXPERIMENTS.md after a
benchmark run:

    python scripts/summarize_results.py [results_dir]
"""

import json
import sys
from pathlib import Path


def load(results: Path, name: str):
    path = results / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as fh:
        return json.load(fh)


def main() -> int:
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    t1 = load(results, "table1_benchmarks")
    t2 = load(results, "table2_fault_simulation")
    t3 = load(results, "table3_test_generation")
    t4 = load(results, "table4_comparison")
    f8 = load(results, "fig8_activity")
    f9 = load(results, "fig9_propagation")

    if t1:
        print("== Table I (accuracy / neurons / synapses) ==")
        for name, s in t1.items():
            print(f"  {name}: {s['accuracy']:.2%} / {s['neurons']} / {s['synapses']}")
    if t2:
        print("== Table II (crit neuron / benign neuron / crit syn / benign syn / time s) ==")
        for name, s in t2.items():
            print(
                f"  {name}: {s['critical_neuron']} / {s['benign_neuron']} / "
                f"{s['critical_synapse']} / {s['benign_synapse']} / {s['wall_time_s']:.0f}"
            )
    if t3:
        print("== Table III ==")
        for name, s in t3.items():
            print(
                f"  {name}: gen {s['runtime_s']:.0f}s, ~{s['duration_samples']:.2f} samples, "
                f"act {s['activated_fraction']:.2%}, FC crit n/s "
                f"{s['fc_critical_neuron']:.2%}/{s['fc_critical_synapse']:.2%}, "
                f"benign n/s {s['fc_benign_neuron']:.2%}/{s['fc_benign_synapse']:.2%}, "
                f"max drop n/s {s['max_drop_neuron']:.2%}/{s['max_drop_synapse']:.2%}"
            )
    if t4:
        print("== Table IV ==")
        for name, s in t4.items():
            if name == "comparison_faults":
                print(f"  comparison fault list: {s}")
                continue
            print(
                f"  {name}: {s['generation_time_s']:.0f}s gen, "
                f"{s['fault_simulations']} sims, {s['configurations']} configs, "
                f"~{s['duration_samples']:.2f} samples, FC {s['coverage']:.2%}"
            )
    if f8:
        print(
            f"== Fig. 8 == optimized {f8['optimized_fraction']:.2%} vs "
            f"sample {f8['sample_fraction']:.2%}"
        )
    if f9:
        print(
            f"== Fig. 9 == detected {f9['detected_faults']}, corruption > 1 spike: "
            f"{f9['fraction_gt_one']:.1%}, mean {f9['mean_diff']:.1f}, max {f9['max_diff']:.0f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
